//! Figure 3.1 — value-prediction speedup on the ideal machine as a function
//! of the instruction-fetch rate.
//!
//! Paper shape: at fetch-4 the speedup is "barely noticeable"; at 8, 16, 32
//! and 40 the averages are roughly 8%, 33%, 70% and 80%, with m88ksim and
//! vortex as dramatic outliers (4% → 112% and 1.5% → 83% between fetch-4
//! and fetch-16).

use fetchvp_core::{IdealConfig, MachineConfig, VpConfig};

use crate::chart::BarChart;
use crate::report::{pct, Table};
use crate::sweep::Sweep;
use crate::{mean, ExperimentConfig};

/// The fetch rates the paper sweeps.
pub const FETCH_RATES: [usize; 5] = [4, 8, 16, 32, 40];

/// Per-benchmark speedups at each fetch rate.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig31Result {
    /// `(benchmark, speedups[rate])` in suite order.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Fig31Result {
    /// The per-rate averages (the paper's "avg" bars).
    pub fn averages(&self) -> Vec<f64> {
        (0..FETCH_RATES.len())
            .map(|i| mean(&self.rows.iter().map(|(_, s)| s[i]).collect::<Vec<_>>()))
            .collect()
    }

    /// The speedups of one benchmark.
    pub fn speedups_of(&self, name: &str) -> Option<&[f64]> {
        self.rows.iter().find(|(n, _)| n == name).map(|(_, s)| s.as_slice())
    }

    /// Renders the figure as a terminal bar chart.
    pub fn to_chart(&self) -> BarChart {
        let mut c =
            BarChart::new("Figure 3.1 — value-prediction speedup vs instruction-fetch rate", 40);
        for (name, speedups) in &self.rows {
            let bars: Vec<(String, f64)> =
                FETCH_RATES.iter().zip(speedups).map(|(r, s)| (format!("BW={r}"), *s)).collect();
            let refs: Vec<(&str, f64)> = bars.iter().map(|(l, v)| (l.as_str(), *v)).collect();
            c.row(name.clone(), &refs);
        }
        c
    }

    /// Renders the figure as a markdown table.
    pub fn to_table(&self) -> Table {
        let headers: Vec<String> = std::iter::once("benchmark".to_string())
            .chain(FETCH_RATES.iter().map(|r| format!("BW={r}")))
            .collect();
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(
            "Figure 3.1 — value-prediction speedup vs instruction-fetch rate (ideal machine)",
            &headers_ref,
        );
        for (name, speedups) in &self.rows {
            let mut cells = vec![name.clone()];
            cells.extend(speedups.iter().map(|&s| pct(s)));
            t.row(&cells);
        }
        let mut avg = vec!["avg".to_string()];
        avg.extend(self.averages().iter().map(|&s| pct(s)));
        t.row(&avg);
        t
    }
}

/// Runs the experiment serially.
pub fn run(cfg: &ExperimentConfig) -> Fig31Result {
    run_with(&Sweep::serial(cfg))
}

/// Runs the experiment on a [`Sweep`]: per benchmark, all ten machines
/// (base + VP at each fetch rate) advance in batched lockstep over one
/// trace walk.
pub fn run_with(sweep: &Sweep) -> Fig31Result {
    let configs: Vec<MachineConfig> = FETCH_RATES
        .iter()
        .flat_map(|&rate| {
            [VpConfig::None, VpConfig::stride_infinite()].map(|vp| {
                MachineConfig::Ideal(IdealConfig { fetch_rate: rate, vp, ..IdealConfig::default() })
            })
        })
        .collect();
    let rows = sweep
        .machines(&configs)
        .into_iter()
        .map(|(name, results)| {
            let speedups =
                results.chunks_exact(2).map(|pair| pair[1].speedup_over(&pair[0])).collect();
            (name.to_string(), speedups)
        })
        .collect();
    Fig31Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_grows_with_fetch_rate_on_average() {
        let r = run(&ExperimentConfig::quick());
        let avg = r.averages();
        assert_eq!(avg.len(), 5);
        // The paper's headline: fetch-4 speedup is marginal, fetch-40 large.
        assert!(avg[0] < 0.15, "fetch-4 average {:.2} too large", avg[0]);
        assert!(avg[4] > avg[0] + 0.10, "no growth: {avg:?}");
        // Weak monotonicity across the sweep.
        for w in avg.windows(2) {
            assert!(w[1] >= w[0] - 0.03, "averages not monotone: {avg:?}");
        }
    }

    #[test]
    fn m88ksim_and_vortex_are_the_outliers() {
        let r = run(&ExperimentConfig::quick());
        let at16 = |name: &str| r.speedups_of(name).unwrap()[2];
        let others = ["go", "gcc", "compress", "li", "ijpeg", "perl"];
        let other_max = others.iter().map(|n| at16(n)).fold(f64::NEG_INFINITY, f64::max);
        assert!(
            at16("m88ksim") > other_max && at16("vortex") > other_max,
            "m88ksim {:.2} / vortex {:.2} vs other max {:.2}",
            at16("m88ksim"),
            at16("vortex"),
            other_max
        );
    }

    #[test]
    fn table_has_one_row_per_benchmark_plus_average() {
        let r = run(&ExperimentConfig { trace_len: 5_000, ..ExperimentConfig::default() });
        assert_eq!(r.to_table().num_rows(), 9);
    }
}
