//! Figure 3.4 — the distribution of dependencies according to their DID.
//!
//! Paper shape: "approximately 60% (on average) of the true-data
//! dependencies span across instructions in a greater or equal distance of
//! 4 instructions".

use fetchvp_dfg::{analyze, DidHistogram};

use crate::report::{pct, Table};
use crate::sweep::Sweep;
use crate::{mean, ExperimentConfig};

/// Per-benchmark DID histograms.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig34Result {
    /// `(benchmark, histogram)` in suite order.
    pub rows: Vec<(String, DidHistogram)>,
}

impl Fig34Result {
    /// Fraction of dependencies with DID ≥ 4, per benchmark.
    pub fn long_fractions(&self) -> Vec<(String, f64)> {
        self.rows.iter().map(|(n, h)| (n.clone(), h.fraction_at_least(4))).collect()
    }

    /// The suite-average fraction with DID ≥ 4 (the paper's ≈60%).
    pub fn average_long_fraction(&self) -> f64 {
        mean(&self.rows.iter().map(|(_, h)| h.fraction_at_least(4)).collect::<Vec<_>>())
    }

    /// Renders the figure as a markdown table (one bin per column).
    pub fn to_table(&self) -> Table {
        let labels: Vec<String> =
            (0..DidHistogram::NUM_BINS).map(DidHistogram::bin_label).collect();
        let headers: Vec<String> = std::iter::once("benchmark".to_string())
            .chain(labels)
            .chain(std::iter::once(">=4 total".to_string()))
            .collect();
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new("Figure 3.4 — distribution of dependencies by DID", &headers_ref);
        for (name, hist) in &self.rows {
            let mut cells = vec![name.clone()];
            cells.extend((0..DidHistogram::NUM_BINS).map(|i| pct(hist.fraction(i))));
            cells.push(pct(hist.fraction_at_least(4)));
            t.row(&cells);
        }
        t
    }
}

/// Runs the experiment serially.
pub fn run(cfg: &ExperimentConfig) -> Fig34Result {
    run_with(&Sweep::serial(cfg))
}

/// Runs the experiment on a [`Sweep`], one job per benchmark.
pub fn run_with(sweep: &Sweep) -> Fig34Result {
    let rows = sweep.per_workload(|_, trace| analyze(trace).histogram);
    Fig34Result { rows: rows.into_iter().map(|(n, h)| (n.to_string(), h)).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_dependencies_dominate_on_average() {
        let r = run(&ExperimentConfig::quick());
        let avg = r.average_long_fraction();
        // The paper reports ≈60%; accept a generous band around it.
        assert!((0.40..=0.85).contains(&avg), "average DID>=4 fraction {avg:.2}");
    }

    #[test]
    fn histograms_are_nonempty_for_every_benchmark() {
        let r = run(&ExperimentConfig { trace_len: 10_000, ..ExperimentConfig::default() });
        for (name, h) in &r.rows {
            assert!(h.total() > 1_000, "{name}: too few arcs");
        }
        assert_eq!(r.to_table().num_rows(), 8);
    }
}
