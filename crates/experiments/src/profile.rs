//! The `fetchvp profile` per-phase timing breakdown.
//!
//! The simulator's wall time splits into four phases that stress different
//! subsystems: **trace generation** (the ISA executor filling
//! [`TraceColumns`](fetchvp_trace::TraceColumns)), **fetch** (a §5
//! conventional front-end with the 2-level BTB walking the columnar trace),
//! **predict** (a §3 infinite stride table looking up and committing every
//! value-producing instruction) and **schedule** (the dataflow scheduling
//! core both machine models share).
//!
//! `profile` times each phase in isolation per benchmark so a performance
//! change can be attributed to the subsystem that caused it — the companion
//! view to `fetchvp bench`, which times whole machine configurations. The
//! phase loops iterate the same zero-copy [`Slot`](fetchvp_trace::Slot)
//! accessors the machines use, so their costs are representative of the
//! hot paths.
//!
//! Results are exported through the metrics [`Registry`] under
//! `profile.<benchmark>.*` (seconds per phase, plus the phase sum and the
//! measured wall time, whose difference is the harness overhead).
//!
//! # Example
//!
//! ```no_run
//! use fetchvp_experiments::{profile, ExperimentConfig};
//!
//! let report = profile::run(&ExperimentConfig::quick());
//! println!("{}", report.to_table());
//! ```

use std::time::Instant;

use fetchvp_bpred::TwoLevelBtb;
use fetchvp_core::sched::{Scheduler, VpDisposition};
use fetchvp_core::VpConfig;
use fetchvp_fetch::{ConventionalFetch, FetchEngine};
use fetchvp_metrics::Registry;
use fetchvp_trace::{trace_program, Trace};
use fetchvp_workloads::suite;

use crate::{ExperimentConfig, Table};

/// Per-phase wall-clock seconds for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseTimes {
    /// Executing the workload program into a columnar trace.
    pub trace_gen: f64,
    /// Walking the trace through a conventional fetch engine + 2-level BTB.
    pub fetch: f64,
    /// Stride-predictor lookup/commit over every value-producing slot.
    pub predict: f64,
    /// Dataflow scheduling of every slot through the shared scheduler core.
    pub schedule: f64,
}

impl PhaseTimes {
    /// Sum of the four phase times.
    pub fn sum(&self) -> f64 {
        self.trace_gen + self.fetch + self.predict + self.schedule
    }
}

/// One benchmark's profile.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Benchmark name (extended-suite order).
    pub name: &'static str,
    /// Dynamic trace length.
    pub instructions: u64,
    /// The per-phase breakdown.
    pub phases: PhaseTimes,
    /// Wall-clock seconds for the whole cell, measured around all four
    /// phases. `wall_seconds - phases.sum()` is harness overhead (statistics,
    /// allocation teardown) and should be small.
    pub wall_seconds: f64,
}

/// A full profile run.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Dynamic instructions traced per benchmark.
    pub trace_len: u64,
    /// Per-benchmark profiles, extended-suite order.
    pub workloads: Vec<WorkloadProfile>,
}

impl ProfileReport {
    /// Renders the per-benchmark phase breakdown (milliseconds and the
    /// dominant phase's share of the wall time).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!("profile — per-phase wall time, trace_len {}", self.trace_len),
            &["benchmark", "trace-gen ms", "fetch ms", "predict ms", "schedule ms", "wall ms"],
        );
        let ms = |s: f64| format!("{:.1}", 1e3 * s);
        for w in &self.workloads {
            t.row(&[
                w.name.to_string(),
                ms(w.phases.trace_gen),
                ms(w.phases.fetch),
                ms(w.phases.predict),
                ms(w.phases.schedule),
                ms(w.wall_seconds),
            ]);
        }
        t
    }

    /// Exports phase times as gauges under `<prefix>.<benchmark>.*`.
    pub fn export_metrics(&self, reg: &mut Registry, prefix: &str) {
        for w in &self.workloads {
            let p = format!("{prefix}.{}", w.name);
            reg.gauge(&p, "trace_gen_seconds", w.phases.trace_gen);
            reg.gauge(&p, "fetch_seconds", w.phases.fetch);
            reg.gauge(&p, "predict_seconds", w.phases.predict);
            reg.gauge(&p, "schedule_seconds", w.phases.schedule);
            reg.gauge(&p, "phase_sum_seconds", w.phases.sum());
            reg.gauge(&p, "wall_seconds", w.wall_seconds);
        }
    }
}

/// Times the fetch phase: a §5 conventional front-end (width 16, ≤ 4 taken
/// branches per group) behind the paper's 2-level BTB, walking the whole
/// trace.
fn time_fetch(trace: &Trace) -> f64 {
    let mut engine = ConventionalFetch::new(16, Some(4), TwoLevelBtb::paper());
    let view = trace.view();
    let started = Instant::now();
    let mut pos = 0;
    while pos < view.len() {
        pos += engine.fetch(view, pos, 16).len.max(1);
    }
    started.elapsed().as_secs_f64()
}

/// Times the predict phase: the §3 infinite stride table serving every
/// value-producing instruction in program order.
fn time_predict(trace: &Trace) -> f64 {
    let VpConfig::Predictor(kind) = VpConfig::stride_infinite() else {
        unreachable!("stride_infinite is a predictor config");
    };
    let mut predictor = kind.build();
    let started = Instant::now();
    for rec in trace.view().slots() {
        if rec.produces_value() {
            let predicted = predictor.lookup(rec.pc());
            predictor.commit(rec.pc(), rec.result(), predicted);
        }
    }
    started.elapsed().as_secs_f64()
}

/// Times the schedule phase: the shared dataflow scheduler over every slot,
/// 40-entry window at a fetch rate of 16 (the §3 fetch-16 configuration).
fn time_schedule(trace: &Trace) -> f64 {
    let mut sched = Scheduler::new(40, Some(16));
    let started = Instant::now();
    for rec in trace.view().slots() {
        sched.schedule(rec, (rec.index() / 16) as u64, VpDisposition::None);
    }
    started.elapsed().as_secs_f64()
}

/// Profiles the whole benchmark suite serially (phases must not contend for
/// the CPU, so no `--jobs` parallelism here).
pub fn run(cfg: &ExperimentConfig) -> ProfileReport {
    let mut workloads = Vec::new();
    for workload in suite(&cfg.workloads) {
        let cell_start = Instant::now();
        let gen_start = Instant::now();
        let trace = trace_program(workload.program(), cfg.trace_len);
        let trace_gen = gen_start.elapsed().as_secs_f64();
        let phases = PhaseTimes {
            trace_gen,
            fetch: time_fetch(&trace),
            predict: time_predict(&trace),
            schedule: time_schedule(&trace),
        };
        workloads.push(WorkloadProfile {
            name: workload.name(),
            instructions: trace.len() as u64,
            phases,
            wall_seconds: cell_start.elapsed().as_secs_f64(),
        });
    }
    ProfileReport { trace_len: cfg.trace_len, workloads }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ProfileReport {
        run(&ExperimentConfig { trace_len: 2_000, ..ExperimentConfig::default() })
    }

    #[test]
    fn profiles_the_whole_suite() {
        let r = tiny();
        assert_eq!(r.workloads.len(), 8);
        for w in &r.workloads {
            assert_eq!(w.instructions, 2_000, "{}", w.name);
            assert!(w.phases.sum() <= w.wall_seconds + 1e-9, "{}", w.name);
        }
    }

    #[test]
    fn table_has_one_row_per_benchmark() {
        let r = tiny();
        assert_eq!(r.to_table().num_rows(), r.workloads.len());
    }

    #[test]
    fn metrics_export_covers_every_phase() {
        let r = tiny();
        let mut reg = Registry::new();
        r.export_metrics(&mut reg, "profile");
        for w in &r.workloads {
            for phase in ["trace_gen", "fetch", "predict", "schedule", "wall", "phase_sum"] {
                let key = format!("profile.{}.{phase}_seconds", w.name);
                assert!(reg.get_gauge(&key).is_some(), "missing gauge {key}");
            }
        }
    }
}
