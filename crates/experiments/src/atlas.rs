//! Scenario atlas: a coarse sweep of one workload family's knob grid,
//! mapping **where in workload space** the paper's fetch-bandwidth ×
//! value-prediction effect is largest.
//!
//! For every grid point — dependence-distance stretch `did` ∈ {0,1,2,3} ×
//! predictable-value weight `p` ∈ {0,⅓,⅔,1} (`mix_stride = p`,
//! `mix_random = 1 − p`) — the ideal machine runs with and without the
//! stride predictor at fetch-4 and fetch-40 in one batch, and the table
//! reports the VP speedup at both widths plus the PR-5 useful-fraction
//! shift. The legacy benchmark is the family origin next to the
//! `did=0, p=0` corner (with both mix knobs zero rather than
//! `mix_random=1`), so the atlas always brackets the paper's own
//! measurement point.

use fetchvp_core::{run_batch, IdealConfig, MachineConfig, VpConfig};
use fetchvp_trace::trace_program;
use fetchvp_workloads::{family_by_name, Knobs, WorkloadParams};

use crate::report::{pct, Table};
use crate::usefulness::{NARROW_FETCH, WIDE_FETCH};

/// The `did` knob values the atlas sweeps.
pub const DID_GRID: [f64; 4] = [0.0, 1.0, 2.0, 3.0];
/// The predictable-value weights the atlas sweeps.
pub const MIX_GRID: [f64; 4] = [0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0];

/// One grid point's measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtlasCell {
    /// Dependence-distance stretch knob.
    pub did: f64,
    /// Predictable-value weight (`mix_stride = p`, `mix_random = 1 − p`).
    pub predictable: f64,
    /// VP speedup at fetch-4 (fraction, the paper's figure unit).
    pub speedup_narrow: f64,
    /// VP speedup at fetch-40.
    pub speedup_wide: f64,
    /// Useful fraction of correct predictions at fetch-4.
    pub useful_narrow: f64,
    /// Useful fraction of correct predictions at fetch-40.
    pub useful_wide: f64,
}

impl AtlasCell {
    /// How much of the VP speedup only fetch bandwidth unlocks — the
    /// paper's headline effect, as a per-point observable.
    pub fn bandwidth_gain(&self) -> f64 {
        self.speedup_wide - self.speedup_narrow
    }
}

/// The full atlas of one family.
#[derive(Debug, Clone, PartialEq)]
pub struct AtlasResult {
    /// The swept family's name.
    pub family: String,
    /// Instructions traced per grid point.
    pub trace_len: u64,
    /// One cell per grid point, `did`-major.
    pub cells: Vec<AtlasCell>,
}

impl AtlasResult {
    /// The grid point where widening fetch 4 → 40 unlocks the most
    /// speedup.
    pub fn hottest(&self) -> Option<&AtlasCell> {
        self.cells
            .iter()
            .max_by(|a, b| a.bandwidth_gain().partial_cmp(&b.bandwidth_gain()).unwrap())
    }

    /// Renders the atlas as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Scenario atlas — `{}` family, ideal machine, stride VP ({} instructions/point)",
                self.family, self.trace_len
            ),
            &[
                "did",
                "predictable",
                "speedup @ fetch-4",
                "speedup @ fetch-40",
                "bandwidth gain",
                "useful @ fetch-4",
                "useful @ fetch-40",
            ],
        );
        for c in &self.cells {
            t.row(&[
                format!("{:.0}", c.did),
                pct(c.predictable),
                pct(c.speedup_narrow),
                pct(c.speedup_wide),
                pct(c.bandwidth_gain()),
                pct(c.useful_narrow),
                pct(c.useful_wide),
            ]);
        }
        t
    }
}

/// Sweeps the atlas grid of one family. Errors on an unknown family name.
pub fn run(family: &str, trace_len: u64) -> Result<AtlasResult, String> {
    let fam = family_by_name(family)
        .ok_or_else(|| format!("unknown workload family `{family}` (see `fetchvp table3-1`)"))?;
    let params = WorkloadParams::default();
    let ideal = |fetch_rate: usize, vp: VpConfig| {
        MachineConfig::Ideal(IdealConfig { fetch_rate, vp, ..IdealConfig::default() })
    };
    let configs = [
        ideal(NARROW_FETCH, VpConfig::None),
        ideal(NARROW_FETCH, VpConfig::stride_infinite()),
        ideal(WIDE_FETCH, VpConfig::None),
        ideal(WIDE_FETCH, VpConfig::stride_infinite()),
    ];
    let mut cells = Vec::new();
    for did in DID_GRID {
        for predictable in MIX_GRID {
            let knobs = Knobs {
                did,
                mix_stride: predictable,
                mix_random: 1.0 - predictable,
                ..Knobs::default()
            };
            let trace = trace_program(&fam.program(&params, &knobs), trace_len);
            let r = run_batch(&trace, &configs);
            cells.push(AtlasCell {
                did,
                predictable,
                speedup_narrow: r[1].speedup_over(&r[0]),
                speedup_wide: r[3].speedup_over(&r[2]),
                useful_narrow: r[1].usefulness.useful_fraction(),
                useful_wide: r[3].usefulness.useful_fraction(),
            });
        }
    }
    Ok(AtlasResult { family: fam.name().to_string(), trace_len, cells })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_family_errors() {
        assert!(run("nonesuch", 1_000).is_err());
    }

    #[test]
    fn covers_the_full_grid() {
        let atlas = run("m88ksim", 4_000).unwrap();
        assert_eq!(atlas.cells.len(), DID_GRID.len() * MIX_GRID.len());
        assert!(atlas.hottest().is_some());
        let text = atlas.to_table().to_string();
        assert_eq!(text.lines().filter(|l| l.starts_with('|')).count(), 2 + atlas.cells.len());
    }

    #[test]
    fn bandwidth_widens_speedup_somewhere() {
        // The paper's effect must be visible on the atlas: at least one
        // grid point gains speedup from fetch bandwidth.
        let atlas = run("m88ksim", 8_000).unwrap();
        assert!(
            atlas.hottest().unwrap().bandwidth_gain() > 0.0,
            "no grid point gained from fetch bandwidth"
        );
    }
}
