//! Cycle-accurate pipeline witness: runs one workload on the realistic
//! machine with the event sink attached and renders the captured stream as
//! Chrome trace-event JSON (loadable in Perfetto / `chrome://tracing`).
//!
//! The machine configuration mirrors the bench suite's `conv4_banked` cell
//! — conventional fetch (width 40, up to 4 taken branches) behind the
//! two-level BTB, stride value prediction through the banked table — so
//! every event class appears: fetch/dispatch/issue/writeback spans per
//! instruction, prediction-outcome instants, bank-conflict instants from
//! the address router, and a derived window-occupancy counter track.
//!
//! The run is single-threaded and fully deterministic: the same workload
//! and trace length produce byte-identical JSON regardless of `--jobs`.

use fetchvp_core::{BtbKind, FrontEnd, MachineResult, RealisticConfig, RealisticMachine, VpConfig};
use fetchvp_predictor::BankedConfig;
use fetchvp_tracing::chrome::chrome_trace;
use fetchvp_tracing::{Event, EventKind, EventSink, Lane, Ring};
use std::collections::BTreeMap;

use crate::sweep::Sweep;
use crate::ExperimentConfig;

/// Ring capacity for the witness run: large enough to hold every event of a
/// quick-config trace; longer runs keep the most recent window (the ring
/// drops oldest and counts the drops).
pub const RING_CAPACITY: usize = 1 << 20;

/// A rendered pipeline witness.
#[derive(Debug, Clone)]
pub struct TraceViz {
    /// The workload that was simulated.
    pub workload: String,
    /// Chrome trace-event JSON (an object with a `traceEvents` array).
    pub json: String,
    /// Events that made it into the export.
    pub events: usize,
    /// Events dropped by the ring (oldest-first) because the run outgrew
    /// [`RING_CAPACITY`].
    pub dropped: u64,
    /// The simulation result (same numbers an untraced run produces).
    pub result: MachineResult,
}

/// An [`EventSink`] that keeps only events overlapping a cycle window,
/// backed by a drop-oldest [`Ring`].
struct WindowSink {
    ring: Ring,
    cycles: Option<(u64, u64)>,
}

impl EventSink for WindowSink {
    fn record(&mut self, ev: Event) {
        if let Some((first, last)) = self.cycles {
            if ev.ts + ev.dur < first || ev.ts > last {
                return;
            }
        }
        self.ring.push(ev);
    }
}

/// The witnessed machine: the bench suite's `conv4_banked` configuration.
fn machine_config() -> RealisticConfig {
    RealisticConfig::paper(
        FrontEnd::Conventional { width: 40, max_taken: Some(4), btb: BtbKind::two_level_paper() },
        VpConfig::stride_infinite(),
    )
    .with_banked(BankedConfig::default())
}

/// Runs the witness serially on a fresh trace cache.
pub fn run(
    cfg: &ExperimentConfig,
    workload: &str,
    cycles: Option<(u64, u64)>,
) -> Result<TraceViz, String> {
    run_with(&Sweep::serial(cfg), workload, cycles)
}

/// Runs the witness against an existing [`Sweep`]'s trace cache.
///
/// `workload` must name a benchmark of the extended suite; `cycles`
/// restricts the export to events overlapping `first..=last`. Errors (with
/// the list of known names) when the workload is unknown.
pub fn run_with(
    sweep: &Sweep,
    workload: &str,
    cycles: Option<(u64, u64)>,
) -> Result<TraceViz, String> {
    let cache = sweep.cache();
    let names: Vec<&str> = cache.workloads(true).iter().map(|w| w.name()).collect();
    let Some(index) = names.iter().position(|n| *n == workload) else {
        return Err(format!(
            "unknown workload `{workload}` (expected one of: {})",
            names.join(", ")
        ));
    };
    let trace = cache.trace(index);
    let mut sink = WindowSink { ring: Ring::new(RING_CAPACITY), cycles };
    let result = RealisticMachine::new(machine_config()).run_traced(&trace, Some(&mut sink));
    let dropped = sink.ring.dropped();
    let mut events = sink.ring.drain();
    append_window_occupancy(&mut events);
    let json = chrome_trace(&events, workload).to_json();
    Ok(TraceViz { workload: workload.to_string(), json, events: events.len(), dropped, result })
}

/// Derives a window-occupancy counter track from the captured spans: an
/// instruction occupies the window from its dispatch cycle until its
/// writeback cycle. Only instructions whose dispatch *and* writeback both
/// survived the ring/window filter contribute, so the counter never goes
/// negative.
fn append_window_occupancy(events: &mut Vec<Event>) {
    let mut spans: BTreeMap<u64, (Option<u64>, Option<u64>)> = BTreeMap::new();
    for ev in events.iter() {
        if ev.kind != EventKind::Span {
            continue;
        }
        match ev.lane {
            Lane::Dispatch => spans.entry(ev.seq).or_default().0 = Some(ev.ts),
            Lane::Writeback => spans.entry(ev.seq).or_default().1 = Some(ev.ts),
            _ => {}
        }
    }
    let mut delta: BTreeMap<u64, i64> = BTreeMap::new();
    for (dispatch, writeback) in spans.into_values() {
        if let (Some(d), Some(w)) = (dispatch, writeback) {
            *delta.entry(d).or_insert(0) += 1;
            *delta.entry(w).or_insert(0) -= 1;
        }
    }
    let mut occupancy = 0i64;
    for (cycle, change) in delta {
        occupancy += change;
        events.push(Event::counter(
            Lane::Window,
            cycle,
            "window_occupancy",
            occupancy.max(0) as u64,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_metrics::Json;

    fn quick() -> ExperimentConfig {
        ExperimentConfig { trace_len: 3_000, ..ExperimentConfig::default() }
    }

    #[test]
    fn unknown_workload_is_a_clear_error() {
        let err = run(&quick(), "no-such-bench", None).unwrap_err();
        assert!(err.contains("unknown workload"), "{err}");
        assert!(err.contains("gcc"), "{err}");
    }

    #[test]
    fn produces_valid_chrome_trace_json() {
        let viz = run(&quick(), "gcc", None).unwrap();
        assert_eq!(viz.dropped, 0);
        assert!(viz.events > 0);
        let parsed = Json::parse(&viz.json).expect("trace-viz output must parse");
        let Some(Json::Array(events)) = parsed.get("traceEvents") else {
            panic!("traceEvents array missing");
        };
        // Metadata for process + every lane, plus the pipeline events.
        assert!(events.len() > viz.events);
        // Untraced run produces the same simulation numbers.
        let sweep = Sweep::serial(&quick());
        let index = sweep.cache().workloads(true).iter().position(|w| w.name() == "gcc").unwrap();
        let plain = RealisticMachine::new(machine_config()).run(&sweep.cache().trace(index));
        assert_eq!(plain.cycles, viz.result.cycles);
    }

    #[test]
    fn cycle_window_restricts_the_export() {
        let full = run(&quick(), "gcc", None).unwrap();
        let windowed = run(&quick(), "gcc", Some((10, 50))).unwrap();
        assert!(windowed.events < full.events);
        assert!(windowed.events > 0);
    }
}
