//! Markdown/CSV table rendering for experiment reports.

use std::fmt;

/// A simple column-aligned table rendered as GitHub-flavoured markdown (via
/// [`fmt::Display`]) or CSV.
///
/// # Example
///
/// ```
/// use fetchvp_experiments::Table;
///
/// let mut t = Table::new("Demo", &["bench", "value"]);
/// t.row(&["go".into(), "1.50".into()]);
/// let text = t.to_string();
/// assert!(text.contains("| bench | value |"));
/// assert!(t.to_csv().starts_with("bench,value"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders as CSV (headers first, no title line).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {}\n", self.title)?;
        writeln!(f, "| {} |", self.headers.join(" | "))?;
        writeln!(f, "|{}|", self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"))?;
        for row in &self.rows {
            writeln!(f, "| {} |", row.join(" | "))?;
        }
        Ok(())
    }
}

/// Formats a fractional speedup the way the paper's figures label it
/// (percent, one decimal).
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a plain number with two decimals.
pub fn num(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let text = t.to_string();
        assert!(text.starts_with("### T"));
        assert!(text.contains("|---|---|"));
        assert!(text.contains("| 1 | 2 |"));
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_checked() {
        Table::new("T", &["a"]).row(&["1".into(), "2".into()]);
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new("T", &["x", "y"]);
        t.row(&["3".into(), "4".into()]);
        assert_eq!(t.to_csv(), "x,y\n3,4\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.335), "33.5%");
        assert_eq!(num(2.0), "2.00");
    }
}
