//! Prediction-usefulness breakdown vs fetch bandwidth — the §3.3 mechanism
//! as a first-class observable.
//!
//! For each benchmark, the ideal machine runs with the stride predictor at
//! fetch-4 and fetch-40, and every *correct* prediction is attributed by
//! the first-consumer rule (useful iff the consumer dispatched before the
//! producer's writeback; see [`fetchvp_core::UsefulnessStats`]). Paper
//! shape: at fetch-4 the majority of correct predictions are useless — the
//! consumer arrives after the value is architecturally ready — while at
//! fetch-40 the majority becomes useful. This is the same story Figure 3.5
//! tells statically over DFG arcs, now measured dynamically in the machine.

use fetchvp_core::{IdealConfig, MachineConfig, VpConfig};

use crate::report::{pct, Table};
use crate::sweep::Sweep;
use crate::{mean, ExperimentConfig};

/// The bandwidth-starved fetch rate (the paper's 4-wide machine).
pub const NARROW_FETCH: usize = 4;
/// The high-bandwidth fetch rate (the paper's 40-wide machine).
pub const WIDE_FETCH: usize = 40;

/// One benchmark's per-prediction usefulness at both fetch rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsefulnessRow {
    /// Correct predictions made (identical at both rates: the predictor
    /// sees the same trace in the same order regardless of fetch width).
    pub correct: u64,
    /// Fraction of correct predictions useful at fetch-4.
    pub useful_narrow: f64,
    /// Fraction of correct predictions useful at fetch-40.
    pub useful_wide: f64,
}

/// Per-benchmark usefulness breakdown over the nine-workload suite.
#[derive(Debug, Clone, PartialEq)]
pub struct UsefulnessResult {
    /// `(benchmark, row)` in extended-suite order (including `mgrid`).
    pub rows: Vec<(String, UsefulnessRow)>,
}

impl UsefulnessResult {
    /// The row of one benchmark.
    pub fn row_of(&self, name: &str) -> Option<UsefulnessRow> {
        self.rows.iter().find(|(n, _)| n == name).map(|(_, r)| *r)
    }

    /// Suite-average useful fraction at fetch-4.
    pub fn average_useful_narrow(&self) -> f64 {
        mean(&self.rows.iter().map(|(_, r)| r.useful_narrow).collect::<Vec<_>>())
    }

    /// Suite-average useful fraction at fetch-40.
    pub fn average_useful_wide(&self) -> f64 {
        mean(&self.rows.iter().map(|(_, r)| r.useful_wide).collect::<Vec<_>>())
    }

    /// Renders the figure as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Prediction usefulness vs fetch bandwidth (ideal machine, stride VP)",
            &["benchmark", "correct preds", "useful @ fetch-4", "useful @ fetch-40"],
        );
        for (name, r) in &self.rows {
            t.row(&[name.clone(), r.correct.to_string(), pct(r.useful_narrow), pct(r.useful_wide)]);
        }
        t.row(&[
            "average".to_string(),
            String::new(),
            pct(self.average_useful_narrow()),
            pct(self.average_useful_wide()),
        ]);
        t
    }
}

/// Runs the experiment serially.
pub fn run(cfg: &ExperimentConfig) -> UsefulnessResult {
    run_with(&Sweep::serial(cfg))
}

/// Runs the experiment on a [`Sweep`]: per benchmark, both fetch rates
/// advance in batched lockstep over one trace walk.
pub fn run_with(sweep: &Sweep) -> UsefulnessResult {
    let configs = [NARROW_FETCH, WIDE_FETCH].map(|rate| {
        MachineConfig::Ideal(IdealConfig {
            fetch_rate: rate,
            vp: VpConfig::stride_infinite(),
            ..IdealConfig::default()
        })
    });
    let rows = sweep
        .machines_extended(&configs)
        .into_iter()
        .map(|(name, results)| {
            let cells: Vec<(u64, f64)> = results
                .iter()
                .map(|r| {
                    let correct = r.vp_stats.as_ref().map_or(0, |s| s.correct);
                    debug_assert_eq!(r.usefulness.useful + r.usefulness.useless, correct);
                    (correct, r.usefulness.useful_fraction())
                })
                .collect();
            let [(correct, narrow), (correct_wide, wide)] =
                cells.try_into().expect("two rates per benchmark");
            assert_eq!(correct, correct_wide, "{name}: fetch rate must not change the predictor");
            (name.to_string(), UsefulnessRow { correct, useful_narrow: narrow, useful_wide: wide })
        })
        .collect();
    UsefulnessResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_extended_suite() {
        let r = run(&ExperimentConfig { trace_len: 5_000, ..ExperimentConfig::default() });
        assert_eq!(r.rows.len(), 9);
        assert!(r.row_of("mgrid").is_some());
        for (name, row) in &r.rows {
            assert!(row.correct > 0, "{name}: no correct predictions");
            assert!((0.0..=1.0).contains(&row.useful_narrow), "{name}");
            assert!((0.0..=1.0).contains(&row.useful_wide), "{name}");
        }
    }

    #[test]
    fn fetch_bandwidth_flips_the_usefulness_majority() {
        let r = run(&ExperimentConfig::quick());
        let narrow = r.average_useful_narrow();
        let wide = r.average_useful_wide();
        // The paper's qualitative claim: most correct predictions are
        // useless at fetch-4 and useful at fetch-40.
        assert!(narrow < 0.5, "fetch-4 average useful fraction {narrow:.2} >= 0.5");
        assert!(wide > 0.5, "fetch-40 average useful fraction {wide:.2} <= 0.5");
        assert!(wide > narrow, "bandwidth must increase usefulness");
    }

    #[test]
    fn table_has_one_row_per_benchmark_plus_average() {
        let r = run(&ExperimentConfig { trace_len: 2_000, ..ExperimentConfig::default() });
        let text = r.to_table().to_string();
        assert_eq!(text.lines().filter(|l| l.starts_with('|')).count(), 2 + 9 + 1);
    }
}
