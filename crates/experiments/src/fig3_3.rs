//! Figure 3.3 — average dynamic instruction distance per benchmark.
//!
//! Paper shape: every benchmark's average DID exceeds the 4-instruction
//! fetch width of then-current processors.

use fetchvp_dfg::analyze;

use crate::report::{num, Table};
use crate::sweep::Sweep;
use crate::{mean, ExperimentConfig};

/// Per-benchmark average DID.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig33Result {
    /// `(benchmark, average DID)` in suite order.
    pub rows: Vec<(String, f64)>,
}

impl Fig33Result {
    /// The suite-average DID.
    pub fn average(&self) -> f64 {
        mean(&self.rows.iter().map(|(_, d)| *d).collect::<Vec<_>>())
    }

    /// The average DID of one benchmark.
    pub fn avg_did_of(&self, name: &str) -> Option<f64> {
        self.rows.iter().find(|(n, _)| n == name).map(|(_, d)| *d)
    }

    /// Renders the figure as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Figure 3.3 — average dynamic instruction distance",
            &["benchmark", "avg DID"],
        );
        for (name, did) in &self.rows {
            t.row(&[name.clone(), num(*did)]);
        }
        t.row(&["avg".into(), num(self.average())]);
        t
    }
}

/// Runs the experiment serially.
pub fn run(cfg: &ExperimentConfig) -> Fig33Result {
    run_with(&Sweep::serial(cfg))
}

/// Runs the experiment on a [`Sweep`], one job per benchmark.
pub fn run_with(sweep: &Sweep) -> Fig33Result {
    let rows = sweep.per_workload(|_, trace| analyze(trace).avg_did());
    Fig33Result { rows: rows.into_iter().map(|(n, d)| (n.to_string(), d)).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_exceeds_the_4_wide_fetch() {
        let r = run(&ExperimentConfig::quick());
        for (name, did) in &r.rows {
            assert!(*did > 4.0, "{name}: average DID {did:.2} not > 4");
        }
        assert!(r.average() > 4.0);
    }

    #[test]
    fn table_lists_all_benchmarks() {
        let r = run(&ExperimentConfig { trace_len: 5_000, ..ExperimentConfig::default() });
        assert_eq!(r.to_table().num_rows(), 9);
        assert!(r.avg_did_of("vortex").is_some());
        assert!(r.avg_did_of("nonesuch").is_none());
    }
}
