//! Per-benchmark value-prediction accuracy — the style of table the
//! paper's own technical reports (\[7\], \[8\]) use to characterize
//! predictors before the machine-level studies.

use fetchvp_predictor::{
    ConfidenceConfig, FcmPredictor, HybridPredictor, LastValuePredictor, PredictorStats,
    StridePredictor, TableGeometry, ValuePredictor,
};

use crate::report::{pct, Table};
use crate::sweep::Sweep;
use crate::ExperimentConfig;

/// The predictors compared (in column order).
pub const PREDICTORS: [&str; 4] = ["last-value", "stride", "hybrid", "fcm"];

fn build_predictors() -> [Box<dyn ValuePredictor>; 4] {
    [
        Box::new(LastValuePredictor::new(TableGeometry::Infinite, ConfidenceConfig::paper())),
        Box::new(StridePredictor::infinite()),
        Box::new(HybridPredictor::paper()),
        Box::new(FcmPredictor::infinite()),
    ]
}

/// Per-benchmark, per-predictor statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyResult {
    /// `(benchmark, stats[predictor])` in suite order, predictors in
    /// [`PREDICTORS`] order.
    pub rows: Vec<(String, [PredictorStats; 4])>,
}

impl AccuracyResult {
    /// The stats of one benchmark/predictor pair.
    pub fn stats_of(&self, benchmark: &str, predictor: &str) -> Option<PredictorStats> {
        let col = PREDICTORS.iter().position(|p| *p == predictor)?;
        self.rows.iter().find(|(n, _)| n == benchmark).map(|(_, s)| s[col])
    }

    /// Renders as a markdown table (`coverage / accuracy` per cell).
    pub fn to_table(&self) -> Table {
        let headers: Vec<String> = std::iter::once("benchmark".to_string())
            .chain(PREDICTORS.iter().map(|p| format!("{p} (cov/acc)")))
            .collect();
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(
            "Value-prediction coverage and accuracy per benchmark (2-bit classification)",
            &headers_ref,
        );
        for (name, stats) in &self.rows {
            let mut cells = vec![name.clone()];
            cells.extend(
                stats.iter().map(|s| format!("{} / {}", pct(s.coverage()), pct(s.accuracy()))),
            );
            t.row(&cells);
        }
        t
    }
}

/// Runs every predictor over every benchmark's value stream, serially.
pub fn run(cfg: &ExperimentConfig) -> AccuracyResult {
    run_with(&Sweep::serial(cfg))
}

/// Runs the measurement on a [`Sweep`], one job per benchmark (the four
/// predictors share a single pass over the trace).
pub fn run_with(sweep: &Sweep) -> AccuracyResult {
    let rows = sweep.per_workload(|_, trace| {
        let mut predictors = build_predictors();
        for rec in trace {
            if !rec.produces_value() {
                continue;
            }
            for p in &mut predictors {
                let predicted = p.lookup(rec.pc);
                p.commit(rec.pc, rec.result, predicted);
            }
        }
        [predictors[0].stats(), predictors[1].stats(), predictors[2].stats(), predictors[3].stats()]
    });
    AccuracyResult { rows: rows.into_iter().map(|(n, s)| (n.to_string(), s)).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig { trace_len: 20_000, ..ExperimentConfig::default() }
    }

    #[test]
    fn stride_dominates_on_the_strided_outliers() {
        let r = run(&cfg());
        for bench in ["m88ksim", "vortex"] {
            let stride = r.stats_of(bench, "stride").unwrap();
            let last = r.stats_of(bench, "last-value").unwrap();
            assert!(
                stride.coverage() > last.coverage(),
                "{bench}: stride cov {:.2} <= last-value {:.2}",
                stride.coverage(),
                last.coverage()
            );
        }
    }

    #[test]
    fn classified_predictions_are_accurate_everywhere() {
        let r = run(&cfg());
        for (name, stats) in &r.rows {
            // The classification unit's whole job: whatever is predicted,
            // is predicted well.
            let stride = stats[1];
            if stride.predictions > 100 {
                assert!(stride.accuracy() > 0.85, "{name}: stride acc {:.2}", stride.accuracy());
            }
        }
    }

    #[test]
    fn table_shape() {
        let r = run(&ExperimentConfig { trace_len: 5_000, ..ExperimentConfig::default() });
        assert_eq!(r.to_table().num_rows(), 8);
        assert!(r.stats_of("go", "fcm").is_some());
        assert!(r.stats_of("go", "nonesuch").is_none());
    }
}
