//! Table 3.2 — instructions progressing through the 4-stage pipeline of the
//! worked example (the Figure 3.2 DFG on a 4-wide machine with a perfect
//! value predictor).

use fetchvp_core::{pipeline_trace, StageTimes, VpConfig};
use fetchvp_isa::{AluOp, Program, ProgramBuilder, Reg};
use fetchvp_trace::trace_program;

use crate::report::Table;

/// Builds the 8-instruction program whose DFG is the paper's Figure 3.2.
pub fn figure_3_2_program() -> Program {
    let mut b = ProgramBuilder::new("figure-3.2");
    b.load_imm(Reg::R1, 1); // instr 1
    b.alu_imm(AluOp::Add, Reg::R2, Reg::R1, 1); // instr 2 <- 1 (DID 1)
    b.load_imm(Reg::R3, 3); // instr 3
    b.alu_imm(AluOp::Add, Reg::R4, Reg::R2, 1); // instr 4 <- 2 (DID 2)
    b.alu_imm(AluOp::Add, Reg::R5, Reg::R1, 1); // instr 5 <- 1 (DID 4)
    b.alu_imm(AluOp::Add, Reg::R6, Reg::R5, 1); // instr 6 <- 5 (DID 1)
    b.alu_imm(AluOp::Add, Reg::R7, Reg::R3, 1); // instr 7 <- 3 (DID 4)
    b.alu_imm(AluOp::Add, Reg::R8, Reg::R7, 1); // instr 8 <- 7 (DID 1)
    b.halt();
    b.build().expect("figure 3.2 program assembles")
}

/// The scheduled stage times of the example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table32Result {
    /// Stage times per instruction, 1-based cycles as in the paper.
    pub stages: Vec<StageTimes>,
}

impl Table32Result {
    /// Renders the paper's cycle-by-stage table: each cell lists the
    /// (1-based) instruction numbers occupying that stage in that cycle.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Table 3.2 — instructions progressing in the pipeline (fetch 4, perfect VP)",
            &["cycle", "fetch", "decode/issue", "execute", "commit"],
        );
        let last_cycle = self.stages.iter().map(|s| s.commit).max().unwrap_or(0);
        for cycle in 1..=last_cycle {
            let list = |pick: fn(&StageTimes) -> u64| {
                self.stages
                    .iter()
                    .filter(|s| pick(s) == cycle)
                    .map(|s| (s.seq + 1).to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            t.row(&[
                cycle.to_string(),
                list(|s| s.fetch),
                list(|s| s.decode),
                list(|s| s.execute),
                list(|s| s.commit),
            ]);
        }
        t
    }
}

/// Runs the worked example.
pub fn run() -> Table32Result {
    let program = figure_3_2_program();
    let trace = trace_program(&program, 100);
    Table32Result { stages: pipeline_trace(&trace, 4, VpConfig::Perfect) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_papers_table() {
        let r = run();
        // Group 1 (instructions 1-4): fetch 1, decode 2, execute 3, commit 4.
        for s in &r.stages[..4] {
            assert_eq!((s.fetch, s.decode, s.execute, s.commit), (1, 2, 3, 4), "{s:?}");
        }
        // Group 2 (instructions 5-8): fetch 2, decode 3, execute 4, commit 5.
        for s in &r.stages[4..8] {
            assert_eq!((s.fetch, s.decode, s.execute, s.commit), (2, 3, 4, 5), "{s:?}");
        }
    }

    #[test]
    fn rendered_table_has_five_cycles() {
        let t = run().to_table();
        assert_eq!(t.num_rows(), 5);
        let text = t.to_string();
        assert!(text.contains("1, 2, 3, 4"));
        assert!(text.contains("5, 6, 7, 8"));
    }
}
