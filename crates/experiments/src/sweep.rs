//! Deterministic parallel execution of figure sweeps over a shared trace
//! cache.
//!
//! The paper's evaluation is a large cartesian product — benchmarks ×
//! machine configurations per figure, plus a dozen ablations — and every
//! cell is independent of every other. This module supplies the two pieces
//! that let a `report`-style run exploit that:
//!
//! * [`TraceCache`] — generates each workload's trace **once** and shares
//!   it (`Arc<Trace>`) across every figure and ablation that runs against
//!   the same [`ExperimentConfig`]. Generation is lazy and race-free: the
//!   first requester traces, concurrent requesters block and then share.
//! * [`Sweep`] — a scoped-thread job runner over `(workload, parameter)`
//!   cells. Jobs are tagged with their cell index, workers pull from a
//!   shared queue, and results are reassembled in index order, so the
//!   output is **bit-identical** to a serial run regardless of `--jobs`
//!   (see `tests/determinism.rs`). With `jobs == 1` no threads are spawned
//!   at all — the cells run inline, in order, which doubles as the oracle
//!   for the parallel path.
//!
//! # Example
//!
//! ```no_run
//! use fetchvp_experiments::{fig3_1, fig3_3, ExperimentConfig, Sweep};
//!
//! let cfg = ExperimentConfig::quick();
//! let sweep = Sweep::new(&cfg); // jobs = available parallelism
//! let a = fig3_1::run_with(&sweep);
//! let b = fig3_3::run_with(&sweep); // reuses the cached traces
//! assert_eq!(sweep.cache().generated(), 8);
//! ```

use std::fs::File;
use std::io::BufWriter;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use fetchvp_core::{run_batch, BatchRunner, MachineConfig, MachineResult, ProgressSink};
use fetchvp_trace::{trace_program, Trace};
use fetchvp_tracestore::{
    run_batch_store_with_progress, stream_program_to_store, CacheCounters, ReplayProgress,
    TraceDir, TraceKey, TraceStore, DEFAULT_CHUNK_LEN,
};
use fetchvp_workloads::{extended_suite, Workload};

use crate::ExperimentConfig;

/// Machine configurations per batch job: each `(workload, chunk)` cell
/// advances up to this many pipelines through one pass over the trace
/// ([`fetchvp_core::run_batch`]). Eight keeps a chunk's scheduler and
/// predictor state cache-resident while amortizing the trace walk; the
/// value is fixed (independent of `--jobs`) so cell decomposition — and
/// therefore output — never depends on the host.
pub const BATCH_CHUNK: usize = 8;

/// Number of benchmarks in the paper's integer suite (the extended suite
/// appends `mgrid` for Figure 5.3).
pub const SUITE_LEN: usize = 8;

/// Largest trace the cache materializes in memory. A decoded instruction
/// costs ~39 bytes of columns, so 8M instructions is roughly 300 MiB per
/// workload — the last size where holding whole traces is reasonable.
/// Beyond it, sweeps replay chunk-by-chunk from an on-disk store
/// ([`fetchvp_tracestore`]), which requires a trace directory.
pub const MAX_IN_MEMORY_TRACE_LEN: u64 = 8_000_000;

/// Lazily generates and shares one trace per workload.
///
/// Holds the *extended* suite (integer benchmarks plus `mgrid`); runners
/// that only need the 8-benchmark suite simply never request the last
/// slot, and its trace is never generated.
pub struct TraceCache {
    cfg: ExperimentConfig,
    /// Content-addressed on-disk cache. When set, trace generation goes
    /// through it (streamed to disk, decoded or replayed from there), so a
    /// second run against a warm directory generates nothing.
    trace_dir: Option<Arc<TraceDir>>,
    workloads: Vec<Workload>,
    slots: Vec<OnceLock<Arc<Trace>>>,
    store_slots: Vec<OnceLock<Arc<TraceStore>>>,
    generated: AtomicUsize,
}

impl TraceCache {
    /// Creates an empty cache for one experiment configuration.
    pub fn new(cfg: &ExperimentConfig) -> TraceCache {
        TraceCache::with_trace_dir(cfg, None)
    }

    /// Like [`TraceCache::new`], backed by a content-addressed trace
    /// directory: generation streams to disk once per key and is shared
    /// across processes and runs.
    pub fn with_trace_dir(cfg: &ExperimentConfig, trace_dir: Option<Arc<TraceDir>>) -> TraceCache {
        let workloads = extended_suite(&cfg.workloads);
        let slots = (0..workloads.len()).map(|_| OnceLock::new()).collect();
        let store_slots = (0..workloads.len()).map(|_| OnceLock::new()).collect();
        TraceCache {
            cfg: *cfg,
            trace_dir,
            workloads,
            slots,
            store_slots,
            generated: AtomicUsize::new(0),
        }
    }

    /// The backing trace directory, if any.
    pub fn trace_dir(&self) -> Option<&Arc<TraceDir>> {
        self.trace_dir.as_ref()
    }

    /// Whether this configuration's traces are too large to materialize
    /// (see [`MAX_IN_MEMORY_TRACE_LEN`]). Out-of-core runs replay from
    /// disk and support machine sweeps only.
    pub fn out_of_core(&self) -> bool {
        self.cfg.trace_len > MAX_IN_MEMORY_TRACE_LEN
    }

    /// The content-address of workload `index`'s trace under this
    /// configuration.
    pub fn key(&self, index: usize) -> TraceKey {
        TraceKey::benchmark(
            self.workloads[index].name(),
            self.cfg.workloads.seed,
            self.cfg.workloads.scale,
            self.cfg.trace_len,
        )
    }

    /// The on-disk store of workload `index`, generated through the trace
    /// directory on first request (a warm directory serves it without
    /// generating). Requires a trace directory.
    ///
    /// # Panics
    ///
    /// Panics if the cache has no trace directory, or on I/O failure —
    /// sweeps have no error channel, and a sweep that cannot read its
    /// traces cannot do anything else either.
    pub fn store(&self, index: usize) -> Arc<TraceStore> {
        let dir = self.trace_dir.as_ref().expect(
            "this run needs a trace directory for its on-disk traces: \
             pass --trace-dir DIR (or set FETCHVP_TRACE_DIR)",
        );
        Arc::clone(self.store_slots[index].get_or_init(|| {
            let key = self.key(index);
            let store = dir
                .open_or_create(&key, |path| {
                    self.generated.fetch_add(1, Ordering::Relaxed);
                    let out = BufWriter::new(File::create(path)?);
                    let program = self.workloads[index].program();
                    stream_program_to_store(
                        program,
                        program.name(),
                        self.cfg.trace_len,
                        DEFAULT_CHUNK_LEN,
                        out,
                    )?;
                    Ok(())
                })
                .unwrap_or_else(|e| {
                    panic!("trace store for `{}`: {e}", self.workloads[index].name())
                });
            Arc::new(store)
        }))
    }

    /// The configuration the cached traces were generated under.
    pub fn config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// The benchmark suite, in paper order: the 8 integer benchmarks, or
    /// all 9 including `mgrid` when `extended` is set.
    pub fn workloads(&self, extended: bool) -> &[Workload] {
        if extended {
            &self.workloads
        } else {
            &self.workloads[..SUITE_LEN]
        }
    }

    /// The trace of workload `index` (extended-suite order), generating it
    /// on first request. Concurrent requesters for the same workload block
    /// until the single generation finishes, then share the same `Arc`.
    /// With a trace directory, generation goes through the on-disk cache
    /// (stream out, decode back), which is byte-identical to direct
    /// generation — the tracestore round-trip tests prove it.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is out-of-core
    /// ([`MAX_IN_MEMORY_TRACE_LEN`]): analysis runners need the whole
    /// trace, so they cannot run at those lengths.
    pub fn trace(&self, index: usize) -> Arc<Trace> {
        assert!(
            !self.out_of_core(),
            "trace_len {} exceeds the in-memory limit of {MAX_IN_MEMORY_TRACE_LEN} \
             instructions; only machine sweeps (fig3-1, fig5-1/2/3, bench) can replay \
             out-of-core",
            self.cfg.trace_len
        );
        Arc::clone(self.slots[index].get_or_init(|| match &self.trace_dir {
            Some(_) => {
                let store = self.store(index);
                let trace = store.to_trace().unwrap_or_else(|e| {
                    panic!("decoding cached trace store {}: {e}", store.path().display())
                });
                Arc::new(trace)
            }
            None => {
                self.generated.fetch_add(1, Ordering::Relaxed);
                Arc::new(trace_program(self.workloads[index].program(), self.cfg.trace_len))
            }
        }))
    }

    /// How many traces have actually been generated (not merely requested)
    /// — the acceptance counter proving each workload is traced at most
    /// once per run.
    pub fn generated(&self) -> usize {
        self.generated.load(Ordering::Relaxed)
    }
}

/// A passive observer of machine-sweep progress, attached to a [`Sweep`]
/// with [`Sweep::with_progress`].
///
/// Machine sweeps ([`Sweep::machines`] and friends) decompose into
/// `(workload, config-chunk)` cells that may run on several worker
/// threads at once, so implementations must be thread-safe and must
/// tolerate interleaved calls from different cells. The observer must
/// never influence results — sweeps are bit-identical with or without
/// one — and it must be cheap: `retired` fires once per ~4096 simulated
/// instructions per cell.
pub trait SweepProgress: Send + Sync {
    /// A machine sweep is starting: it will run `cells` cells, walking
    /// `instructions_total` trace instructions in total (cells × trace
    /// length). Called once per machine sweep; a job running several
    /// sweeps observes several `begin`s and should accumulate.
    fn begin(&self, cells: u64, instructions_total: u64);

    /// A cell walking `workload` for config chunk `chunk` retired `delta`
    /// further instructions; out-of-core cells report the on-disk chunk
    /// they are replaying in `store_chunk` (0 for in-memory cells).
    fn retired(&self, workload: &'static str, chunk: usize, store_chunk: usize, delta: u64);

    /// The `(workload, chunk)` cell finished.
    fn cell_done(&self, workload: &'static str, chunk: usize);
}

/// Per-cell adapter translating the batch kernel's absolute
/// "instructions retired" ticks into [`SweepProgress::retired`] deltas
/// (several cells advance concurrently, so the aggregate observer needs
/// increments, not per-cell absolutes).
struct CellProgress<'a> {
    sink: &'a dyn SweepProgress,
    workload: &'static str,
    chunk: usize,
    store_chunk: AtomicUsize,
    last: AtomicU64,
}

impl<'a> CellProgress<'a> {
    fn new(sink: &'a dyn SweepProgress, workload: &'static str, chunk: usize) -> CellProgress<'a> {
        CellProgress {
            sink,
            workload,
            chunk,
            store_chunk: AtomicUsize::new(0),
            last: AtomicU64::new(0),
        }
    }
}

impl ProgressSink for CellProgress<'_> {
    fn retired(&self, retired: u64) {
        let prev = self.last.swap(retired, Ordering::Relaxed);
        let delta = retired.saturating_sub(prev);
        if delta > 0 {
            self.sink.retired(
                self.workload,
                self.chunk,
                self.store_chunk.load(Ordering::Relaxed),
                delta,
            );
        }
    }
}

impl ReplayProgress for CellProgress<'_> {
    fn retired(&self, chunk: usize, instructions_done: u64) {
        self.store_chunk.store(chunk, Ordering::Relaxed);
        ProgressSink::retired(self, instructions_done);
    }
}

/// A deterministic parallel sweep runner bound to a [`TraceCache`].
///
/// Cloning is cheap and shares the cache.
#[derive(Clone)]
pub struct Sweep {
    cache: Arc<TraceCache>,
    jobs: usize,
    progress: Option<Arc<dyn SweepProgress>>,
}

impl Sweep {
    /// A sweep with as many workers as the host has logical CPUs.
    pub fn new(cfg: &ExperimentConfig) -> Sweep {
        Sweep::with_jobs(cfg, default_jobs())
    }

    /// A sweep with an explicit worker count. `jobs == 1` runs every cell
    /// inline, serially, in index order — the oracle the parallel path must
    /// match bit-for-bit.
    pub fn with_jobs(cfg: &ExperimentConfig, jobs: usize) -> Sweep {
        Sweep::with_trace_dir(cfg, None, jobs)
    }

    /// A sweep whose trace cache is backed by a content-addressed trace
    /// directory (required for out-of-core configurations; optional
    /// cross-process caching for in-memory ones).
    pub fn with_trace_dir(
        cfg: &ExperimentConfig,
        trace_dir: Option<Arc<TraceDir>>,
        jobs: usize,
    ) -> Sweep {
        Sweep {
            cache: Arc::new(TraceCache::with_trace_dir(cfg, trace_dir)),
            jobs: jobs.max(1),
            progress: None,
        }
    }

    /// The trace directory's hit/miss/bytes counters, if one is attached.
    pub fn trace_counters(&self) -> Option<CacheCounters> {
        self.cache.trace_dir().map(|d| d.counters())
    }

    /// A serial sweep (`jobs == 1`) — what the figure runners' plain
    /// `run(cfg)` entry points use.
    pub fn serial(cfg: &ExperimentConfig) -> Sweep {
        Sweep::with_jobs(cfg, 1)
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// A sweep sharing this sweep's trace cache but running `jobs` workers
    /// (`0` is clamped to 1). This is how the server's sweep pool serves
    /// requests that ask for different parallelism against the same warm
    /// traces.
    pub fn reconfigured(&self, jobs: usize) -> Sweep {
        Sweep { cache: Arc::clone(&self.cache), jobs: jobs.max(1), progress: self.progress.clone() }
    }

    /// A sweep sharing this sweep's cache and worker count that reports
    /// machine-sweep progress to `sink` — how the server attaches a job's
    /// progress ring to the pooled sweep serving it. Results are
    /// bit-identical with or without an observer.
    pub fn with_progress(&self, sink: Arc<dyn SweepProgress>) -> Sweep {
        Sweep { cache: Arc::clone(&self.cache), jobs: self.jobs, progress: Some(sink) }
    }

    /// The experiment configuration.
    pub fn config(&self) -> &ExperimentConfig {
        self.cache.config()
    }

    /// The shared trace cache.
    pub fn cache(&self) -> &TraceCache {
        &self.cache
    }

    /// Runs `f` over every `(workload, parameter)` cell of the 8-benchmark
    /// suite and returns, per workload in suite order, the results in
    /// parameter order.
    pub fn cells<P: Sync, R: Send>(
        &self,
        params: &[P],
        f: impl Fn(&Workload, &Trace, &P) -> R + Sync,
    ) -> Vec<(&'static str, Vec<R>)> {
        self.cells_on(false, params, f)
    }

    /// [`Sweep::cells`] over the extended suite (including `mgrid`).
    pub fn cells_extended<P: Sync, R: Send>(
        &self,
        params: &[P],
        f: impl Fn(&Workload, &Trace, &P) -> R + Sync,
    ) -> Vec<(&'static str, Vec<R>)> {
        self.cells_on(true, params, f)
    }

    /// Runs `f` once per workload of the 8-benchmark suite (cells with a
    /// single implicit parameter).
    pub fn per_workload<R: Send>(
        &self,
        f: impl Fn(&Workload, &Trace) -> R + Sync,
    ) -> Vec<(&'static str, R)> {
        self.cells(&[()], |w, t, ()| f(w, t))
            .into_iter()
            .map(|(name, mut rs)| (name, rs.pop().expect("one result per workload")))
            .collect()
    }

    /// Runs every machine configuration against every workload of the
    /// 8-benchmark suite with config batching: configurations are split
    /// into [`BATCH_CHUNK`]-sized chunks, each `(workload, chunk)` cell
    /// walks its trace **once** via [`fetchvp_core::run_batch`], and cells
    /// parallelize across `--jobs` workers like any other sweep. Returns,
    /// per workload in suite order, the results in `configs` order —
    /// byte-identical to serial per-config runs regardless of jobs or
    /// chunking.
    pub fn machines(&self, configs: &[MachineConfig]) -> Vec<(&'static str, Vec<MachineResult>)> {
        self.machines_on(false, configs)
    }

    /// [`Sweep::machines`] over the extended suite (including `mgrid`).
    pub fn machines_extended(
        &self,
        configs: &[MachineConfig],
    ) -> Vec<(&'static str, Vec<MachineResult>)> {
        self.machines_on(true, configs)
    }

    fn machines_on(
        &self,
        extended: bool,
        configs: &[MachineConfig],
    ) -> Vec<(&'static str, Vec<MachineResult>)> {
        assert!(!configs.is_empty(), "a machine sweep needs at least one config");
        // Chunks carry their index so progress events can name the config
        // chunk a cell is advancing.
        let chunks: Vec<(usize, &[MachineConfig])> =
            configs.chunks(BATCH_CHUNK).enumerate().collect();
        let progress = self.progress.as_deref();
        if let Some(sink) = progress {
            let cells = (self.cache.workloads(extended).len() * chunks.len()) as u64;
            sink.begin(cells, cells * self.cache.config().trace_len);
        }
        let per_workload = if self.cache.out_of_core() {
            // Out-of-core: each cell replays its workload's on-disk store
            // chunk-by-chunk. `run_batch_store` is byte-identical to
            // `run_batch`, so the sweep output does not depend on which
            // path ran.
            self.cells_stores_on(extended, &chunks, |w, store, &(k, chunk)| {
                let cell = progress.map(|sink| CellProgress::new(sink, w.name(), k));
                let results = run_batch_store_with_progress(
                    store,
                    chunk,
                    cell.as_ref().map(|c| c as &dyn ReplayProgress),
                )
                .unwrap_or_else(|e| panic!("out-of-core replay of `{}`: {e}", w.name()));
                if let Some(sink) = progress {
                    sink.cell_done(w.name(), k);
                }
                results
            })
        } else {
            self.cells_on(extended, &chunks, |w, trace, &(k, chunk)| match progress {
                None => run_batch(trace, chunk),
                Some(sink) => {
                    let cell = CellProgress::new(sink, w.name(), k);
                    let view = trace.view();
                    let mut runner = BatchRunner::new(chunk);
                    runner.feed_with_progress(view, 0, view.len(), Some(&cell));
                    let results = runner.finish();
                    sink.cell_done(w.name(), k);
                    results
                }
            })
        };
        per_workload
            .into_iter()
            .map(|(name, per_chunk)| (name, per_chunk.into_iter().flatten().collect()))
            .collect()
    }

    /// Runs `f` over every `(workload, parameter)` cell against the
    /// workloads' on-disk trace stores instead of in-memory traces — the
    /// out-of-core counterpart of `cells_on`. Requires a trace directory.
    fn cells_stores_on<P: Sync, R: Send>(
        &self,
        extended: bool,
        params: &[P],
        f: impl Fn(&Workload, &TraceStore, &P) -> R + Sync,
    ) -> Vec<(&'static str, Vec<R>)> {
        let workloads = self.cache.workloads(extended);
        let np = params.len();
        assert!(np > 0, "a sweep needs at least one parameter");
        let flat = self.run_jobs(workloads.len() * np, |cell| {
            let (w, p) = (cell / np, cell % np);
            let store = self.cache.store(w);
            f(&workloads[w], &store, &params[p])
        });
        let mut it = flat.into_iter();
        workloads
            .iter()
            .map(|w| (w.name(), (0..np).map(|_| it.next().expect("cell result")).collect()))
            .collect()
    }

    /// Runs `f` once per extended-suite workload against its on-disk trace
    /// store — what the out-of-core bench path uses. Requires a trace
    /// directory.
    pub fn per_workload_store_extended<R: Send>(
        &self,
        f: impl Fn(&Workload, &TraceStore) -> R + Sync,
    ) -> Vec<(&'static str, R)> {
        self.cells_stores_on(true, &[()], |w, s, ()| f(w, s))
            .into_iter()
            .map(|(name, mut rs)| (name, rs.pop().expect("one result per workload")))
            .collect()
    }

    fn cells_on<P: Sync, R: Send>(
        &self,
        extended: bool,
        params: &[P],
        f: impl Fn(&Workload, &Trace, &P) -> R + Sync,
    ) -> Vec<(&'static str, Vec<R>)> {
        let workloads = self.cache.workloads(extended);
        let np = params.len();
        assert!(np > 0, "a sweep needs at least one parameter");
        let flat = self.run_jobs(workloads.len() * np, |cell| {
            let (w, p) = (cell / np, cell % np);
            let trace = self.cache.trace(w);
            f(&workloads[w], &trace, &params[p])
        });
        let mut it = flat.into_iter();
        workloads
            .iter()
            .map(|w| (w.name(), (0..np).map(|_| it.next().expect("cell result")).collect()))
            .collect()
    }

    /// Executes `run_cell` for cells `0..n_cells` and returns the results
    /// in cell order. Workers pull cell indices from a shared atomic
    /// counter (work stealing); each tags its results with the index so the
    /// reassembled vector is independent of scheduling.
    fn run_jobs<R: Send>(&self, n_cells: usize, run_cell: impl Fn(usize) -> R + Sync) -> Vec<R> {
        let workers = self.jobs.min(n_cells);
        if workers <= 1 {
            return (0..n_cells).map(run_cell).collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = (0..n_cells).map(|_| None).collect();
        let tagged: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let cell = next.fetch_add(1, Ordering::Relaxed);
                            if cell >= n_cells {
                                break;
                            }
                            local.push((cell, run_cell(cell)));
                        }
                        local
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("sweep worker panicked")).collect()
        });
        for (cell, result) in tagged.into_iter().flatten() {
            debug_assert!(slots[cell].is_none(), "cell {cell} computed twice");
            slots[cell] = Some(result);
        }
        slots.into_iter().map(|r| r.expect("every cell computed exactly once")).collect()
    }
}

/// The host's logical CPU count (1 if it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig { trace_len: 2_000, ..ExperimentConfig::default() }
    }

    #[test]
    fn trace_cache_returns_the_same_arc_for_repeated_requests() {
        let cache = TraceCache::new(&cfg());
        let a = cache.trace(3);
        let b = cache.trace(3);
        assert!(Arc::ptr_eq(&a, &b), "repeated requests must share one trace");
        assert_eq!(cache.generated(), 1);
    }

    #[test]
    fn trace_cache_generates_each_workload_once_under_contention() {
        let cache = TraceCache::new(&cfg());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for w in 0..SUITE_LEN {
                        assert_eq!(cache.trace(w).len(), 2_000);
                    }
                });
            }
        });
        assert_eq!(cache.generated(), SUITE_LEN);
    }

    #[test]
    fn extended_suite_slot_is_lazy() {
        let cache = TraceCache::new(&cfg());
        assert_eq!(cache.workloads(false).len(), SUITE_LEN);
        assert_eq!(cache.workloads(true).len(), SUITE_LEN + 1);
        for w in 0..SUITE_LEN {
            cache.trace(w);
        }
        assert_eq!(cache.generated(), SUITE_LEN, "mgrid must not be traced unrequested");
    }

    #[test]
    fn cells_are_ordered_regardless_of_jobs() {
        let params = [1usize, 2, 3];
        let serial = Sweep::with_jobs(&cfg(), 1)
            .cells(&params, |w, t, p| (w.name().to_string(), t.len(), *p));
        let parallel = Sweep::with_jobs(&cfg(), 8)
            .cells(&params, |w, t, p| (w.name().to_string(), t.len(), *p));
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), SUITE_LEN);
        for (name, cells) in &serial {
            assert_eq!(cells.len(), params.len());
            for ((n, len, _), p) in cells.iter().zip(&params) {
                assert_eq!((n.as_str(), *len), (*name, 2_000));
                assert_eq!(*p, cells[p - 1].2);
            }
        }
    }

    #[test]
    fn per_workload_visits_the_suite_in_order() {
        let sweep = Sweep::with_jobs(&cfg(), 4);
        let names: Vec<_> =
            sweep.per_workload(|w, _| w.name().to_string()).into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl", "vortex"]);
        assert_eq!(sweep.cache().generated(), SUITE_LEN);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
        assert!(Sweep::with_jobs(&cfg(), 0).jobs() == 1);
    }

    #[test]
    fn progress_observer_sees_every_instruction_and_changes_nothing() {
        use fetchvp_core::{IdealConfig, VpConfig};
        use std::sync::Mutex;

        #[derive(Default)]
        struct Tally {
            begins: Mutex<Vec<(u64, u64)>>,
            retired: AtomicU64,
            cells_done: AtomicUsize,
        }
        impl SweepProgress for Tally {
            fn begin(&self, cells: u64, instructions_total: u64) {
                self.begins.lock().unwrap().push((cells, instructions_total));
            }
            fn retired(&self, workload: &'static str, _chunk: usize, _store: usize, delta: u64) {
                assert!(!workload.is_empty());
                assert!(delta > 0, "zero deltas must be filtered out");
                self.retired.fetch_add(delta, Ordering::Relaxed);
            }
            fn cell_done(&self, _workload: &'static str, _chunk: usize) {
                self.cells_done.fetch_add(1, Ordering::Relaxed);
            }
        }

        // Ten configs → two chunks per workload, run on 4 workers so the
        // observer sees interleaved cells.
        let configs: Vec<MachineConfig> = (0..10)
            .map(|i| {
                MachineConfig::Ideal(IdealConfig {
                    fetch_rate: 4 + i,
                    vp: VpConfig::stride_infinite(),
                    ..IdealConfig::default()
                })
            })
            .collect();
        let plain = Sweep::with_jobs(&cfg(), 4);
        let expected = plain.machines(&configs);

        let tally = Arc::new(Tally::default());
        let observed = plain.with_progress(Arc::clone(&tally) as Arc<dyn SweepProgress>);
        assert_eq!(observed.machines(&configs), expected, "observer must not perturb results");

        let cells = (SUITE_LEN * 2) as u64;
        let total = cells * cfg().trace_len;
        assert_eq!(*tally.begins.lock().unwrap(), vec![(cells, total)]);
        assert_eq!(tally.retired.load(Ordering::Relaxed), total, "every instruction reported");
        assert_eq!(tally.cells_done.load(Ordering::Relaxed) as u64, cells);

        // `reconfigured` keeps the observer attached.
        let tally2 = Arc::new(Tally::default());
        let re = plain.with_progress(Arc::clone(&tally2) as Arc<dyn SweepProgress>).reconfigured(1);
        assert_eq!(re.machines(&configs), expected);
        assert_eq!(tally2.retired.load(Ordering::Relaxed), total);
    }

    #[test]
    fn machines_preserves_config_order_across_chunks_and_jobs() {
        use fetchvp_core::{IdealConfig, MachineConfig, VpConfig};
        // Ten configs: crosses the BATCH_CHUNK = 8 boundary, so each
        // workload becomes two cells that must be reassembled in order.
        let configs: Vec<MachineConfig> = [4, 8, 16, 32, 40]
            .into_iter()
            .flat_map(|rate| {
                [VpConfig::None, VpConfig::stride_infinite()].map(|vp| {
                    MachineConfig::Ideal(IdealConfig {
                        fetch_rate: rate,
                        vp,
                        ..IdealConfig::default()
                    })
                })
            })
            .collect();
        assert!(configs.len() > BATCH_CHUNK);
        let serial = Sweep::with_jobs(&cfg(), 1).machines(&configs);
        let parallel = Sweep::with_jobs(&cfg(), 8).machines(&configs);
        assert_eq!(serial, parallel, "job count must not change machine results");
        assert_eq!(serial.len(), SUITE_LEN);
        for (name, results) in &serial {
            assert_eq!(results.len(), configs.len(), "{name}: one result per config");
            // Config order is preserved: the VP runs (odd slots) never run
            // slower than their paired baselines, and the paper's headline
            // effect orders the pairs by fetch rate.
            for pair in results.chunks_exact(2) {
                assert!(pair[1].cycles <= pair[0].cycles, "{name}: VP slowed the machine");
            }
        }
    }
}
