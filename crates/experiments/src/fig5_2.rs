//! Figure 5.2 — value-prediction speedup on the realistic machine with the
//! 2-level PAp BTB, sweeping taken branches per cycle.
//!
//! Paper shape: ≈3% average at 1 taken branch/cycle rising to ≈20% at 4 —
//! roughly 30% lower than the ideal-BTB numbers of Figure 5.1, showing that
//! "any small improvement in the BTB accuracy can considerably affect the
//! performance gain of value prediction".

use fetchvp_core::BtbKind;

use crate::fig5_1::{taken_sweep, TakenSweepResult};
use crate::sweep::Sweep;
use crate::ExperimentConfig;

/// Runs the experiment serially.
pub fn run(cfg: &ExperimentConfig) -> TakenSweepResult {
    run_with(&Sweep::serial(cfg))
}

/// Runs the experiment on a [`Sweep`].
pub fn run_with(sweep: &Sweep) -> TakenSweepResult {
    taken_sweep(
        sweep,
        BtbKind::two_level_paper(),
        "Figure 5.2 — value-prediction speedup vs taken branches/cycle (2-level BTB)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig5_1;

    #[test]
    fn real_btb_speedups_do_not_exceed_ideal_by_much() {
        let cfg = ExperimentConfig::quick();
        let ideal = fig5_1::run(&cfg);
        let real = run(&cfg);
        let (ia, ra) = (ideal.averages(), real.averages());
        // At the high-bandwidth end the realistic BTB must lose part of the
        // gain (the paper reports ≈30% lower at n=4).
        let last = ia.len() - 1;
        assert!(
            ra[last] <= ia[last] + 0.05,
            "2-level BTB average {:.2} exceeds ideal {:.2}",
            ra[last],
            ia[last]
        );
    }

    #[test]
    fn speedup_still_grows_with_bandwidth() {
        let r = run(&ExperimentConfig::quick());
        let avg = r.averages();
        assert!(*avg.last().unwrap() >= avg[0], "{avg:?}");
    }
}
