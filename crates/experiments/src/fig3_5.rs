//! Figure 3.5 — the distribution of data dependencies according to their
//! value predictability and DID.
//!
//! Paper shape: ≈23% of dependencies (average) are predictable with DID < 4
//! (exploitable by a 4-wide machine); the predictable-and-long fraction is
//! ≈40% for m88ksim and >55% for vortex versus ≈20–25% elsewhere.

use fetchvp_dfg::analyze;

use crate::report::{pct, Table};
use crate::sweep::Sweep;
use crate::{mean, ExperimentConfig};

/// One benchmark's predictability breakdown (fractions of all arcs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredRow {
    /// Producer instance not correctly predicted.
    pub unpredictable: f64,
    /// Predictable with DID < 4.
    pub predictable_short: f64,
    /// Predictable with DID ≥ 4.
    pub predictable_long: f64,
}

/// Per-benchmark predictability × DID breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig35Result {
    /// `(benchmark, breakdown)` in suite order.
    pub rows: Vec<(String, PredRow)>,
}

impl Fig35Result {
    /// The breakdown of one benchmark.
    pub fn row_of(&self, name: &str) -> Option<PredRow> {
        self.rows.iter().find(|(n, _)| n == name).map(|(_, r)| *r)
    }

    /// Suite-average fraction predictable with DID < 4 (paper: ≈23%).
    pub fn average_predictable_short(&self) -> f64 {
        mean(&self.rows.iter().map(|(_, r)| r.predictable_short).collect::<Vec<_>>())
    }

    /// Renders the figure as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Figure 3.5 — dependencies by value predictability and DID",
            &["benchmark", "unpredictable", "predictable DID<4", "predictable DID>=4"],
        );
        for (name, r) in &self.rows {
            t.row(&[
                name.clone(),
                pct(r.unpredictable),
                pct(r.predictable_short),
                pct(r.predictable_long),
            ]);
        }
        t
    }
}

/// Runs the experiment serially.
pub fn run(cfg: &ExperimentConfig) -> Fig35Result {
    run_with(&Sweep::serial(cfg))
}

/// Runs the experiment on a [`Sweep`], one job per benchmark.
pub fn run_with(sweep: &Sweep) -> Fig35Result {
    let rows = sweep.per_workload(|_, trace| {
        let p = analyze(trace).predictability;
        PredRow {
            unpredictable: 1.0 - p.fraction_predictable(),
            predictable_short: p.fraction_predictable_short(4),
            predictable_long: p.fraction_predictable_long(4),
        }
    });
    Fig35Result { rows: rows.into_iter().map(|(n, r)| (n.to_string(), r)).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let r = run(&ExperimentConfig { trace_len: 20_000, ..ExperimentConfig::default() });
        for (name, row) in &r.rows {
            let sum = row.unpredictable + row.predictable_short + row.predictable_long;
            assert!((sum - 1.0).abs() < 1e-9, "{name}: fractions sum to {sum}");
        }
    }

    #[test]
    fn m88ksim_and_vortex_lead_in_predictable_long_dependencies() {
        let r = run(&ExperimentConfig::quick());
        let long = |n: &str| r.row_of(n).unwrap().predictable_long;
        let others = ["go", "gcc", "compress", "li", "ijpeg", "perl"];
        let other_max = others.iter().map(|n| long(n)).fold(f64::NEG_INFINITY, f64::max);
        assert!(long("m88ksim") > other_max, "m88ksim {:.2} <= {other_max:.2}", long("m88ksim"));
        assert!(long("vortex") > other_max, "vortex {:.2} <= {other_max:.2}", long("vortex"));
        // Vortex is the extreme case in the paper (>55%).
        assert!(long("vortex") > 0.45, "vortex predictable-long {:.2}", long("vortex"));
    }

    #[test]
    fn short_predictable_fraction_is_modest_on_average() {
        let r = run(&ExperimentConfig::quick());
        let avg = r.average_predictable_short();
        // Paper: ≈23% on average. Accept a band.
        assert!((0.05..=0.40).contains(&avg), "avg predictable-short {avg:.2}");
    }
}
