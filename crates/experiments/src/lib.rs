//! Experiment runners regenerating every table and figure of the paper.
//!
//! One module per result in the paper's evaluation:
//!
//! | module | paper result |
//! |---|---|
//! | [`table3_1`] | Table 3.1 — the benchmark suite |
//! | [`fig3_1`] | Figure 3.1 — ideal-machine VP speedup vs fetch rate |
//! | [`table3_2`] | Table 3.2 — pipeline walk-through of the Figure 3.2 DFG |
//! | [`fig3_3`] | Figure 3.3 — average dynamic instruction distance |
//! | [`fig3_4`] | Figure 3.4 — DID distribution histograms |
//! | [`fig3_5`] | Figure 3.5 — predictability × DID distribution |
//! | [`fig5_1`] | Figure 5.1 — VP speedup, perfect BTB, ≤ n taken branches/cycle |
//! | [`fig5_2`] | Figure 5.2 — VP speedup, 2-level PAp BTB |
//! | [`fig5_3`] | Figure 5.3 — VP speedup with a trace cache |
//!
//! The [`accuracy`] module tabulates per-benchmark predictor
//! coverage/accuracy (the style of the paper's technical-report
//! references \[7\]/\[8\]), and the [`ablations`] module adds
//! design-space sweeps beyond the paper
//! (prediction-table banks, window size, classification threshold,
//! predictor kind, trace-cache partial matching). The [`mod@bench`] module is
//! the perf-regression suite and the [`profile`] module attributes its wall
//! time to the simulator's phases (trace generation / fetch / predict /
//! schedule). The [`usefulness`] module measures the §3.3 mechanism
//! directly — which correct predictions actually shorten the critical path
//! at fetch-4 vs fetch-40 — and the [`traceviz`] module exports a
//! cycle-accurate pipeline witness as Chrome trace-event JSON for Perfetto.
//!
//! Every runner takes an [`ExperimentConfig`] (trace length and workload
//! parameters) and returns structured results plus a markdown [`Table`] for
//! reports. The absolute numbers depend on the synthetic workloads; the
//! *shapes* — who wins, by roughly what factor, where the crossovers fall —
//! are what reproduce the paper (see `EXPERIMENTS.md`).
//!
//! # Example
//!
//! ```no_run
//! use fetchvp_experiments::{fig3_3, ExperimentConfig};
//!
//! let cfg = ExperimentConfig { trace_len: 200_000, ..ExperimentConfig::default() };
//! let result = fig3_3::run(&cfg);
//! println!("{}", result.to_table());
//! ```

// The README's `rust` code blocks must keep compiling: run them as
// doc-tests of this crate, which depends on everything they use.
#[cfg(doctest)]
#[doc = include_str!("../../../README.md")]
pub struct ReadmeDoctests;

pub mod ablations;
pub mod accuracy;
pub mod atlas;
pub mod bench;
pub mod breakdown;
pub mod chart;
pub mod fig3_1;
pub mod fig3_3;
pub mod fig3_4;
pub mod fig3_5;
pub mod fig5_1;
pub mod fig5_2;
pub mod fig5_3;
pub mod fuzz;
pub mod jobspec;
pub mod profile;
pub mod report;
pub mod sweep;
pub mod table3_1;
pub mod table3_2;
pub mod traceviz;
pub mod usefulness;

pub use jobspec::{JobOutcome, JobSpec};
pub use report::Table;
pub use sweep::{default_jobs, Sweep, SweepProgress, TraceCache, MAX_IN_MEMORY_TRACE_LEN};

use fetchvp_trace::{trace_program, Trace};
use fetchvp_workloads::{suite, Workload, WorkloadParams};

/// Shared configuration for all experiment runners.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Dynamic instructions traced per benchmark (the paper uses 100M from
    /// Shade; it notes that longer traces "barely affect the results").
    pub trace_len: u64,
    /// Workload generation parameters.
    pub workloads: WorkloadParams,
}

impl Default for ExperimentConfig {
    fn default() -> ExperimentConfig {
        ExperimentConfig { trace_len: 1_000_000, workloads: WorkloadParams::default() }
    }
}

impl ExperimentConfig {
    /// A reduced configuration for fast tests and benches.
    pub fn quick() -> ExperimentConfig {
        ExperimentConfig { trace_len: 60_000, ..ExperimentConfig::default() }
    }
}

/// Iterates the benchmark suite serially, capturing one trace at a time
/// (traces are dropped between benchmarks to bound memory).
///
/// This is the original serial path; the runners now go through
/// [`sweep::Sweep`], which caches traces and can run cells in parallel.
/// It is kept public as the independent oracle for the determinism tests.
pub fn for_each_trace(cfg: &ExperimentConfig, mut f: impl FnMut(&Workload, &Trace)) {
    for workload in suite(&cfg.workloads) {
        let trace = trace_program(workload.program(), cfg.trace_len);
        f(&workload, &trace);
    }
}

/// The arithmetic mean of a slice (0 for an empty slice).
pub(crate) fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_smaller() {
        assert!(ExperimentConfig::quick().trace_len < ExperimentConfig::default().trace_len);
    }

    #[test]
    fn for_each_trace_visits_the_whole_suite() {
        let cfg = ExperimentConfig { trace_len: 500, ..ExperimentConfig::default() };
        let mut names = Vec::new();
        for_each_trace(&cfg, |w, t| {
            assert_eq!(t.len(), 500);
            names.push(w.name());
        });
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
