//! Differential fuzzing over workload families: the standing invariant
//! gate.
//!
//! Each case draws one [`FamilyPoint`] from workload space (see
//! [`fetchvp_workloads::family`]), traces it, and advances the
//! [`fuzz_configs`] machine set through [`fetchvp_core::run_batch`]. The
//! deterministic metrics-JSON surface of every [`MachineResult`] is then
//! checked against the cross-machine invariants:
//!
//! * **I1 ideal dominance** — at equal fetch width and equal value
//!   predictor, the ideal front-end never loses to a realistic one
//!   (`ideal.cycles <= realistic.cycles`).
//! * **I2 usefulness conservation** — every correct prediction is
//!   attributed exactly once: `useful + useless == correct` (PR 5's
//!   first-consumer rule).
//! * **I3 batch-vs-serial identity** — each config's batched metrics JSON
//!   is byte-identical to the same config run alone on its serial machine.
//! * **I4 companion independence** — splitting the config set into two
//!   batches changes no bytes (the `--jobs`/chunking-independence analog
//!   for a single trace).
//! * **I5 fetch monotonicity** — on the ideal machine, IPC is
//!   non-decreasing in fetch bandwidth (cycles non-increasing over fetch
//!   4 → 8 → 16 → 40).
//!
//! Every failure is reported as a replayable repro tuple —
//! `family knobs… seed=0x… len=N` — and minimized by halving the trace
//! length while the invariant still fails. `fetchvp fuzz --replay "…"`
//! re-checks a printed tuple; [`CaseSpec::parse`] round-trips the
//! [`std::fmt::Display`] rendering exactly.

use fetchvp_core::{
    run_batch, BtbKind, FrontEnd, IdealConfig, IdealMachine, MachineConfig, MachineResult,
    RealisticConfig, RealisticMachine, VpConfig,
};
use fetchvp_predictor::BankedConfig;
use fetchvp_trace::{trace_program, Trace};
use fetchvp_workloads::rng::SplitMix64;
use fetchvp_workloads::{family_by_name, FamilyPoint, Knobs, WorkloadParams};

/// Fuzzing-run parameters (the CLI's `fuzz` flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzOptions {
    /// Cases to sample and check.
    pub cases: usize,
    /// Base seed; equal options replay the identical case sequence.
    pub seed: u64,
    /// Upper bound on each case's trace length.
    pub max_len: u64,
}

impl Default for FuzzOptions {
    fn default() -> FuzzOptions {
        FuzzOptions { cases: 256, seed: 0x1998, max_len: 60_000 }
    }
}

/// Shortest trace the sampler draws and the shrinker keeps — below this
/// the machines barely leave their pipeline fill transient.
pub const MIN_LEN: u64 = 512;

/// One fully-specified fuzz case: a workload-space point plus a trace
/// length. Its [`std::fmt::Display`] rendering is the replayable repro
/// tuple; [`CaseSpec::parse`] inverts it exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseSpec {
    /// The sampled workload-space point.
    pub point: FamilyPoint,
    /// Dynamic instructions to trace.
    pub len: u64,
}

impl CaseSpec {
    /// Derives the whole case from one seed: family, knobs, workload seed
    /// and trace length are all functions of `case_seed`.
    pub fn from_seed(case_seed: u64, max_len: u64) -> CaseSpec {
        let mut rng = SplitMix64::new(case_seed);
        let point = FamilyPoint::sample(&mut rng);
        let lo = MIN_LEN.min(max_len.max(1));
        let hi = max_len.max(lo);
        let len = lo + if hi > lo { rng.below(hi - lo + 1) } else { 0 };
        CaseSpec { point, len }
    }

    /// Parses a repro tuple as printed by [`std::fmt::Display`]:
    /// `family key=value… seed=0x… len=N`.
    pub fn parse(text: &str) -> Result<CaseSpec, String> {
        let mut tokens = text.split_whitespace();
        let family = tokens.next().ok_or("empty repro tuple")?;
        let family =
            family_by_name(family).ok_or_else(|| format!("unknown family `{family}`"))?.name();
        let mut knobs = Knobs::default();
        let mut params = WorkloadParams::default();
        let mut len = None;
        for token in tokens {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got `{token}`"))?;
            match key {
                "seed" => {
                    let digits = value.strip_prefix("0x").unwrap_or(value);
                    let radix = if digits.len() < value.len() { 16 } else { 10 };
                    params.seed = u64::from_str_radix(digits, radix)
                        .map_err(|_| format!("bad seed `{value}`"))?;
                }
                "len" => {
                    len = Some(value.parse().map_err(|_| format!("bad length `{value}`"))?);
                }
                _ => {
                    let parsed: f64 =
                        value.parse().map_err(|_| format!("bad value for `{key}`: `{value}`"))?;
                    if !knobs.set(key, parsed) {
                        return Err(format!("unknown knob `{key}`"));
                    }
                }
            }
        }
        let len = len.ok_or("repro tuple is missing len=N")?;
        Ok(CaseSpec { point: FamilyPoint { family, knobs, params }, len })
    }
}

impl std::fmt::Display for CaseSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} len={}", self.point, self.len)
    }
}

/// How a case's machine set is executed. The production implementation is
/// [`BatchRunner`]; tests inject corrupting runners to prove the harness
/// catches and shrinks seeded failures.
pub trait CaseRunner {
    /// Runs every config over the trace, one result per config.
    fn run(&self, trace: &Trace, configs: &[MachineConfig]) -> Vec<MachineResult>;
}

/// The production runner: the batch pipeline kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchRunner;

impl CaseRunner for BatchRunner {
    fn run(&self, trace: &Trace, configs: &[MachineConfig]) -> Vec<MachineResult> {
        run_batch(trace, configs)
    }
}

// Indices into `fuzz_configs()`, used by the invariant checks below.
const IDEAL_40_STRIDE: usize = 0;
const CONV_40_STRIDE: usize = 1;
const IDEAL_40_NONE: usize = 2;
const CONV_40_NONE: usize = 3;
const IDEAL_4_STRIDE: usize = 4;
const IDEAL_8_STRIDE: usize = 5;
const IDEAL_16_STRIDE: usize = 6;
#[cfg(test)]
const CONV_40_BANKED: usize = 7;

/// The differential machine set: ideal front-ends at four widths, the
/// realistic conventional front-end with and without value prediction,
/// and the §4 banked-table variant — eight configs, one batch chunk.
pub fn fuzz_configs() -> Vec<MachineConfig> {
    let ideal = |fetch_rate: usize, vp: VpConfig| {
        MachineConfig::Ideal(IdealConfig { fetch_rate, vp, ..IdealConfig::default() })
    };
    let conv = |vp: VpConfig| {
        RealisticConfig::paper(
            FrontEnd::Conventional {
                width: 40,
                max_taken: Some(4),
                btb: BtbKind::two_level_paper(),
            },
            vp,
        )
    };
    vec![
        ideal(40, VpConfig::stride_infinite()),
        MachineConfig::Realistic(conv(VpConfig::stride_infinite())),
        ideal(40, VpConfig::None),
        MachineConfig::Realistic(conv(VpConfig::None)),
        ideal(4, VpConfig::stride_infinite()),
        ideal(8, VpConfig::stride_infinite()),
        ideal(16, VpConfig::stride_infinite()),
        MachineConfig::Realistic(
            conv(VpConfig::stride_infinite()).with_banked(BankedConfig::default()),
        ),
    ]
}

/// One caught invariant violation: the original failing case, its
/// shrunk minimum, and which invariant broke.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzFailure {
    /// Index of the case in the run's sequence.
    pub case_index: usize,
    /// The case as sampled.
    pub spec: CaseSpec,
    /// The shortest still-failing version of the case.
    pub shrunk: CaseSpec,
    /// Which invariant failed, with the offending counter values.
    pub invariant: String,
}

/// The outcome of one fuzzing run. Equal [`FuzzOptions`] produce equal
/// reports — the run is deterministic end to end.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzReport {
    /// The options the run used.
    pub options: FuzzOptions,
    /// Every caught violation, in case order.
    pub failures: Vec<FuzzFailure>,
    /// Total instructions traced across all cases (repro-tuple traces
    /// only; shrinking re-runs are not counted).
    pub instructions: u64,
}

impl FuzzReport {
    /// True when every case satisfied every invariant.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Human-readable run summary (deterministic for equal options).
    pub fn render(&self) -> String {
        let mut out = format!(
            "fuzz: {} cases, seed {:#x}, max-len {}, {} machine configs\n",
            self.options.cases,
            self.options.seed,
            self.options.max_len,
            fuzz_configs().len()
        );
        for failure in &self.failures {
            out.push_str(&format!(
                "fuzz: case {} FAILED: {}\n  repro:  {}\n  shrunk: {}\n",
                failure.case_index, failure.invariant, failure.spec, failure.shrunk
            ));
        }
        if self.passed() {
            out.push_str(&format!(
                "fuzz: all {} cases passed ({} instructions traced)\n",
                self.options.cases, self.instructions
            ));
        } else {
            out.push_str(&format!(
                "fuzz: {} of {} cases FAILED\n",
                self.failures.len(),
                self.options.cases
            ));
        }
        out
    }

    /// One repro tuple per line, for the nightly failure artifact.
    pub fn repro_lines(&self) -> String {
        self.failures.iter().map(|f| format!("{}\n", f.shrunk)).collect()
    }
}

/// Checks one case; `Some(message)` names the violated invariant.
fn check_case(runner: &dyn CaseRunner, spec: &CaseSpec) -> Option<String> {
    let program = spec.point.program();
    let trace = trace_program(&program, spec.len);
    let configs = fuzz_configs();
    let results = runner.run(&trace, &configs);
    if results.len() != configs.len() {
        return Some(format!(
            "runner returned {} results for {} configs",
            results.len(),
            configs.len()
        ));
    }

    // I2: usefulness conservation on every value-predicting machine.
    for (i, r) in results.iter().enumerate() {
        if let Some(vp) = &r.vp_stats {
            let attributed = r.usefulness.useful + r.usefulness.useless;
            if attributed != vp.correct {
                return Some(format!(
                    "I2 usefulness-conservation: config #{i}: useful {} + useless {} != correct {}",
                    r.usefulness.useful, r.usefulness.useless, vp.correct
                ));
            }
        }
    }

    // I1: ideal dominance at equal width and equal predictor.
    for (ideal, realistic) in [(IDEAL_40_STRIDE, CONV_40_STRIDE), (IDEAL_40_NONE, CONV_40_NONE)] {
        if results[ideal].cycles > results[realistic].cycles {
            return Some(format!(
                "I1 ideal-dominance: ideal config #{ideal} took {} cycles, realistic #{realistic} only {}",
                results[ideal].cycles, results[realistic].cycles
            ));
        }
    }

    // I5: ideal-machine IPC monotone in fetch bandwidth.
    let ladder = [IDEAL_4_STRIDE, IDEAL_8_STRIDE, IDEAL_16_STRIDE, IDEAL_40_STRIDE];
    for pair in ladder.windows(2) {
        let (narrow, wide) = (pair[0], pair[1]);
        if results[wide].cycles > results[narrow].cycles {
            return Some(format!(
                "I5 fetch-monotonicity: widening fetch (config #{narrow} -> #{wide}) raised cycles {} -> {}",
                results[narrow].cycles, results[wide].cycles
            ));
        }
    }

    let bytes: Vec<String> = results.iter().map(|r| r.metrics().to_json().to_json()).collect();

    // I3: batched bytes match the serial machines.
    for (i, config) in configs.iter().enumerate() {
        let serial = match *config {
            MachineConfig::Ideal(ic) => IdealMachine::new(ic).run(&trace),
            MachineConfig::Realistic(rc) => RealisticMachine::new(rc).run(&trace),
        };
        if serial.metrics().to_json().to_json() != bytes[i] {
            return Some(format!(
                "I3 batch-vs-serial: config #{i} diverged from its serial machine"
            ));
        }
    }

    // I4: companion independence — two half-batches, same bytes.
    let (front, back) = configs.split_at(configs.len() / 2);
    let mut split = runner.run(&trace, front);
    split.extend(runner.run(&trace, back));
    for (i, r) in split.iter().enumerate() {
        if r.metrics().to_json().to_json() != bytes[i] {
            return Some(format!(
                "I4 companion-independence: config #{i} changed when batched separately"
            ));
        }
    }

    None
}

/// Minimizes a failing case by halving its trace length while the failure
/// reproduces, stopping at [`MIN_LEN`].
fn shrink(runner: &dyn CaseRunner, spec: &CaseSpec) -> CaseSpec {
    let mut best = *spec;
    while best.len / 2 >= MIN_LEN {
        let candidate = CaseSpec { len: best.len / 2, ..best };
        if check_case(runner, &candidate).is_none() {
            break;
        }
        best = candidate;
    }
    best
}

/// Re-checks one printed repro tuple; `Some(message)` means it still
/// fails.
pub fn replay(spec: &CaseSpec) -> Option<String> {
    replay_with(&BatchRunner, spec)
}

/// [`replay`] against an injected runner — lets tests confirm a shrunk
/// tuple still trips the same seeded bug that produced it.
pub fn replay_with(runner: &dyn CaseRunner, spec: &CaseSpec) -> Option<String> {
    check_case(runner, spec)
}

/// Runs the fuzzer with the production [`BatchRunner`].
pub fn run(options: &FuzzOptions) -> FuzzReport {
    run_with(&BatchRunner, options)
}

/// Runs the fuzzer with an injected [`CaseRunner`] (the test seam).
pub fn run_with(runner: &dyn CaseRunner, options: &FuzzOptions) -> FuzzReport {
    let mut failures = Vec::new();
    let mut instructions = 0;
    for case_index in 0..options.cases {
        // Decorate the index so consecutive cases start far apart in the
        // SplitMix64 sequence (the testutil `for_cases` recipe).
        let case_seed = (case_index as u64).wrapping_mul(0xA076_1D64_78BD_642F) ^ options.seed;
        let spec = CaseSpec::from_seed(case_seed, options.max_len);
        instructions += spec.len;
        if let Some(invariant) = check_case(runner, &spec) {
            let shrunk = shrink(runner, &spec);
            failures.push(FuzzFailure { case_index, spec, shrunk, invariant });
        }
    }
    FuzzReport { options: *options, failures, instructions }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_specs_are_deterministic_and_bounded() {
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            let a = CaseSpec::from_seed(seed, 10_000);
            let b = CaseSpec::from_seed(seed, 10_000);
            assert_eq!(a, b);
            assert!((MIN_LEN..=10_000).contains(&a.len));
        }
    }

    #[test]
    fn repro_tuples_round_trip() {
        for seed in 0..32u64 {
            let spec = CaseSpec::from_seed(seed, 60_000);
            let printed = spec.to_string();
            let parsed = CaseSpec::parse(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
            assert_eq!(parsed, spec, "{printed}");
        }
    }

    #[test]
    fn parse_rejects_malformed_tuples() {
        assert!(CaseSpec::parse("").is_err());
        assert!(CaseSpec::parse("nonesuch len=100").is_err());
        assert!(CaseSpec::parse("gcc wat=1 len=100").is_err());
        assert!(CaseSpec::parse("gcc did=zz len=100").is_err());
        assert!(CaseSpec::parse("gcc did=1").is_err(), "missing len");
    }

    #[test]
    fn config_indices_line_up() {
        let configs = fuzz_configs();
        assert_eq!(configs.len(), 8);
        let rate = |i: usize| match configs[i] {
            MachineConfig::Ideal(ic) => ic.fetch_rate,
            MachineConfig::Realistic(_) => panic!("config #{i} should be ideal"),
        };
        assert_eq!(rate(IDEAL_4_STRIDE), 4);
        assert_eq!(rate(IDEAL_8_STRIDE), 8);
        assert_eq!(rate(IDEAL_16_STRIDE), 16);
        assert_eq!(rate(IDEAL_40_STRIDE), 40);
        assert_eq!(rate(IDEAL_40_NONE), 40);
        for i in [CONV_40_STRIDE, CONV_40_NONE, CONV_40_BANKED] {
            assert!(matches!(configs[i], MachineConfig::Realistic(_)), "config #{i}");
        }
    }

    #[test]
    fn a_small_run_passes_and_is_deterministic() {
        let options = FuzzOptions { cases: 4, seed: 11, max_len: 4_000 };
        let a = run(&options);
        let b = run(&options);
        assert_eq!(a, b);
        assert!(a.passed(), "{}", a.render());
        assert!(a.render().contains("all 4 cases passed"));
    }
}
