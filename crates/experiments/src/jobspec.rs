//! The job-spec → sweep adapter behind `fetchvp serve`.
//!
//! A *job spec* is the JSON document a client `POST`s to the daemon's
//! `/run` endpoint: which experiment to execute and under which
//! [`ExperimentConfig`]. This module owns the full boundary contract —
//! strict validation (unknown fields and out-of-range values are errors,
//! not warnings, because the input is untrusted), resource limits
//! ([`MAX_TRACE_LEN`], [`MAX_JOBS`]) so a single request cannot pin the
//! daemon, and deterministic execution through the same [`Sweep`] runner
//! the CLI uses, so a served result is byte-identical to an in-process
//! run of the same spec (the `server_e2e` test asserts this).
//!
//! # Schema
//!
//! ```json
//! {
//!   "experiment": "bench",   // required; see EXPERIMENTS
//!   "trace_len": 60000,      // optional; 1..=MAX_TRACE_LEN, default 60000
//!                            // (machine sweeps may go to MAX_TRACE_LEN_OOC
//!                            //  when the daemon has a trace directory)
//!   "seed": 1998,            // optional; workload data seed
//!   "jobs": 1                // optional; 1..=MAX_JOBS sweep workers, default 1
//! }
//! ```
//!
//! `"bench"` runs the standard [`mod@bench`] suite and returns the full report
//! document; every other experiment name runs the corresponding
//! table/figure runner and returns `{"experiment", "csv"}` with the
//! table's CSV rendering.

use fetchvp_metrics::{Json, Registry};

use crate::{
    ablations, accuracy, bench, breakdown, fig3_1, fig3_3, fig3_4, fig3_5, fig5_1, fig5_2, fig5_3,
    table3_1, usefulness, ExperimentConfig, Sweep, Table,
};

/// Upper bound on a served job's `trace_len` when the job must hold its
/// traces in memory.
///
/// The default CLI configuration traces 1M instructions per benchmark;
/// 5M bounds a single request at a few suite-seconds of simulation while
/// still covering every configuration the committed experiments use.
pub const MAX_TRACE_LEN: u64 = 5_000_000;

/// Upper bound on a served job's `trace_len` when the experiment can
/// replay out-of-core ([`supports_out_of_core`]) *and* the server runs
/// with a trace directory — the paper's 100M-instruction scale.
pub const MAX_TRACE_LEN_OOC: u64 = 100_000_000;

/// Default `trace_len` when the spec omits it — the `--quick` bench
/// configuration, sized for interactive latency.
pub const DEFAULT_TRACE_LEN: u64 = 60_000;

/// Upper bound on a served job's inner sweep workers.
pub const MAX_JOBS: usize = 64;

/// The experiment names a job spec may request.
pub const EXPERIMENTS: &[&str] = &[
    "bench",
    "table3-1",
    "accuracy",
    "breakdown",
    "fig3-1",
    "fig3-3",
    "fig3-4",
    "fig3-5",
    "fig5-1",
    "fig5-2",
    "fig5-3",
    "ablation-predictors",
    "ablation-fetch",
    "usefulness",
];

/// Whether `experiment` runs exclusively through the machine-sweep path
/// (`Sweep::machines*`), which can replay chunk-by-chunk from an on-disk
/// store. Analysis runners (DID distances, histograms, accuracy tables)
/// walk whole traces and stay bounded by [`MAX_TRACE_LEN`].
pub fn supports_out_of_core(experiment: &str) -> bool {
    matches!(experiment, "bench" | "fig3-1" | "fig5-1" | "fig5-2" | "fig5-3" | "usefulness")
}

/// A validated request to run one experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Experiment name; one of [`EXPERIMENTS`].
    pub experiment: String,
    /// Dynamic instructions traced per benchmark.
    pub trace_len: u64,
    /// Workload generation seed.
    pub seed: u64,
    /// Worker threads for the inner sweep (1 = serial, the determinism
    /// oracle).
    pub jobs: usize,
}

impl Default for JobSpec {
    fn default() -> JobSpec {
        JobSpec {
            experiment: "bench".to_string(),
            trace_len: DEFAULT_TRACE_LEN,
            seed: fetchvp_workloads::WorkloadParams::default().seed,
            jobs: 1,
        }
    }
}

/// What a finished job hands back to the server.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The result document returned by `GET /jobs/<id>`.
    pub result: Json,
    /// Simulator counters to merge into the daemon's live registry
    /// (`trace.*`, `sched.*`, `predictor.*`, … namespaces).
    pub metrics: Registry,
}

impl JobSpec {
    /// Validates a parsed JSON document into a spec.
    ///
    /// Strict by design: the input crosses a network boundary, so unknown
    /// fields, wrong types, unknown experiment names and out-of-range
    /// values are all rejected with a message naming the offending field.
    pub fn from_json(doc: &Json) -> Result<JobSpec, String> {
        JobSpec::from_json_with_limits(doc, false)
    }

    /// [`JobSpec::from_json`] with the server's capabilities made
    /// explicit: when `ooc_available` (the daemon has a trace directory),
    /// machine-sweep experiments ([`supports_out_of_core`]) may request up
    /// to [`MAX_TRACE_LEN_OOC`] instructions. The error messages
    /// distinguish "too big for memory" (a capability problem, naming the
    /// missing piece) from a plainly invalid value.
    pub fn from_json_with_limits(doc: &Json, ooc_available: bool) -> Result<JobSpec, String> {
        let pairs = doc.as_object().ok_or("job spec must be a JSON object")?;
        let mut spec = JobSpec::default();
        let mut experiment = None;
        let mut trace_len = None;
        for (key, value) in pairs {
            match key.as_str() {
                "experiment" => {
                    let name =
                        value.as_str().ok_or("field `experiment` must be a string")?.to_string();
                    if !EXPERIMENTS.contains(&name.as_str()) {
                        return Err(format!(
                            "unknown experiment `{name}` (valid: {})",
                            EXPERIMENTS.join(", ")
                        ));
                    }
                    experiment = Some(name);
                }
                "trace_len" => {
                    trace_len = Some(
                        value.as_u64().ok_or("field `trace_len` must be an unsigned integer")?,
                    );
                }
                "seed" => {
                    spec.seed = value.as_u64().ok_or("field `seed` must be an unsigned integer")?;
                }
                "jobs" => {
                    let n = value.as_u64().ok_or("field `jobs` must be an unsigned integer")?;
                    if n == 0 || n > MAX_JOBS as u64 {
                        return Err(format!("field `jobs` must be in 1..={MAX_JOBS}, got {n}"));
                    }
                    spec.jobs = n as usize;
                }
                other => return Err(format!("unknown field `{other}` in job spec")),
            }
        }
        // `trace_len` is validated after the whole document is parsed: its
        // cap depends on which experiment was requested.
        spec.experiment = experiment.ok_or("job spec is missing the `experiment` field")?;
        if let Some(n) = trace_len {
            let ooc_capable = supports_out_of_core(&spec.experiment);
            let cap = if ooc_available && ooc_capable { MAX_TRACE_LEN_OOC } else { MAX_TRACE_LEN };
            if n == 0 || n > cap {
                return Err(if n > MAX_TRACE_LEN && n <= MAX_TRACE_LEN_OOC && !ooc_capable {
                    format!(
                        "field `trace_len` {n} exceeds the in-memory limit {MAX_TRACE_LEN}, and \
                         experiment `{}` cannot replay out-of-core (only machine sweeps can: \
                         bench, fig3-1, fig5-1, fig5-2, fig5-3, usefulness)",
                        spec.experiment
                    )
                } else if n > MAX_TRACE_LEN && n <= MAX_TRACE_LEN_OOC && !ooc_available {
                    format!(
                        "field `trace_len` {n} exceeds the in-memory limit {MAX_TRACE_LEN}; \
                         out-of-core replay (up to {MAX_TRACE_LEN_OOC}) needs the daemon started \
                         with a trace directory (--trace-dir)"
                    )
                } else {
                    format!("field `trace_len` must be in 1..={cap}, got {n}")
                });
            }
            spec.trace_len = n;
        }
        Ok(spec)
    }

    /// The spec as a JSON document (inverse of [`JobSpec::from_json`]).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("experiment".to_string(), Json::Str(self.experiment.clone())),
            ("trace_len".to_string(), Json::UInt(self.trace_len)),
            ("seed".to_string(), Json::UInt(self.seed)),
            ("jobs".to_string(), Json::UInt(self.jobs as u64)),
        ])
    }

    /// The canonical text of the spec: the JSON rendering of
    /// [`JobSpec::to_json`], whose field order is fixed (`experiment`,
    /// `trace_len`, `seed`, `jobs`) and whose optional fields are always
    /// materialized with their defaults. Two requests that differ only in
    /// JSON formatting — whitespace, field order, an omitted default —
    /// canonicalize to the same text.
    pub fn canonical(&self) -> String {
        self.to_json().to_json()
    }

    /// FNV-1a hash of [`JobSpec::canonical`] — the content address of this
    /// spec's result. The server's result cache and its consistent-hash
    /// ring both key off this value, so every process in a fleet agrees on
    /// which member owns a spec and whether its result is already known.
    pub fn canonical_hash(&self) -> u64 {
        fetchvp_tracestore::fnv1a(self.canonical().as_bytes())
    }

    /// Whether this spec's result document is a pure function of the spec
    /// (and therefore cacheable). Table and figure experiments are fully
    /// deterministic; `bench` reports embed wall-clock measurements, so
    /// replaying a stored bench report would serve stale timings.
    pub fn deterministic_result(&self) -> bool {
        self.experiment != "bench"
    }

    /// The experiment configuration this spec runs under. Specs with equal
    /// configs can share one trace cache, which is what keeps the daemon's
    /// traces warm across requests.
    pub fn config(&self) -> ExperimentConfig {
        let mut cfg = ExperimentConfig { trace_len: self.trace_len, ..ExperimentConfig::default() };
        cfg.workloads.seed = self.seed;
        cfg
    }

    /// Whether this spec is at or below the `--quick` bench size.
    pub fn is_quick(&self) -> bool {
        self.trace_len <= ExperimentConfig::quick().trace_len
    }

    /// Executes the spec on a [`Sweep`] (which must have been built from
    /// [`JobSpec::config`] — the server's sweep pool guarantees this).
    ///
    /// The result document is deterministic for a given spec, except for
    /// the wall-clock fields of a bench report; its counter sections are
    /// byte-identical to an in-process run.
    pub fn run(&self, sweep: &Sweep) -> JobOutcome {
        if self.experiment == "bench" {
            let report = bench::run_with(sweep, self.is_quick());
            let mut metrics = Registry::new();
            for workload in &report.workloads {
                metrics.merge(&workload.registry);
            }
            return JobOutcome { result: report.to_json(), metrics };
        }
        let table = self.table(sweep);
        let result = Json::object([
            ("experiment".to_string(), Json::Str(self.experiment.clone())),
            ("csv".to_string(), Json::Str(table.to_csv())),
        ]);
        JobOutcome { result, metrics: Registry::new() }
    }

    fn table(&self, sweep: &Sweep) -> Table {
        match self.experiment.as_str() {
            "table3-1" => table3_1::run_with(sweep).to_table(),
            "accuracy" => accuracy::run_with(sweep).to_table(),
            "breakdown" => breakdown::run_with(sweep).to_table(),
            "fig3-1" => fig3_1::run_with(sweep).to_table(),
            "fig3-3" => fig3_3::run_with(sweep).to_table(),
            "fig3-4" => fig3_4::run_with(sweep).to_table(),
            "fig3-5" => fig3_5::run_with(sweep).to_table(),
            "fig5-1" => fig5_1::run_with(sweep).to_table(),
            "fig5-2" => fig5_2::run_with(sweep).to_table(),
            "fig5-3" => fig5_3::run_with(sweep).to_table(),
            "ablation-predictors" => ablations::predictor_comparison_with(sweep).to_table(),
            "ablation-fetch" => ablations::fetch_mechanisms_with(sweep).to_table(),
            "usefulness" => usefulness::run_with(sweep).to_table(),
            other => unreachable!("validated experiment `{other}` has no runner"),
        }
    }

    // `table3-2` is excluded from EXPERIMENTS on purpose: it takes no
    // config, so serving it would bypass the sweep pool for no benefit.
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_spec(text: &str) -> Result<JobSpec, String> {
        JobSpec::from_json(&Json::parse(text).map_err(|e| e.to_string())?)
    }

    #[test]
    fn minimal_spec_uses_defaults() {
        let spec = parse_spec(r#"{"experiment": "bench"}"#).unwrap();
        assert_eq!(spec.experiment, "bench");
        assert_eq!(spec.trace_len, DEFAULT_TRACE_LEN);
        assert_eq!(spec.jobs, 1);
        assert!(spec.is_quick());
    }

    #[test]
    fn full_spec_round_trips() {
        let text = r#"{"experiment": "fig3-1", "trace_len": 2000, "seed": 7, "jobs": 2}"#;
        let spec = parse_spec(text).unwrap();
        assert_eq!(spec.config().trace_len, 2000);
        assert_eq!(spec.config().workloads.seed, 7);
        assert_eq!(JobSpec::from_json(&spec.to_json()).unwrap(), spec);
    }

    #[test]
    fn invalid_specs_are_rejected_with_field_names() {
        for (text, needle) in [
            (r#"[]"#, "object"),
            (r#"{}"#, "experiment"),
            (r#"{"experiment": "fig9-9"}"#, "unknown experiment"),
            (r#"{"experiment": 3}"#, "`experiment`"),
            (r#"{"experiment": "bench", "trace_len": 0}"#, "`trace_len`"),
            (r#"{"experiment": "bench", "trace_len": 99999999999}"#, "`trace_len`"),
            (r#"{"experiment": "bench", "jobs": 0}"#, "`jobs`"),
            (r#"{"experiment": "bench", "jobs": 1000}"#, "`jobs`"),
            (r#"{"experiment": "bench", "seed": -1}"#, "`seed`"),
            (r#"{"experiment": "bench", "wat": 1}"#, "unknown field `wat`"),
        ] {
            let err = parse_spec(text).expect_err(text);
            assert!(err.contains(needle), "{text}: error `{err}` should mention {needle}");
        }
    }

    #[test]
    fn canonical_hash_ignores_formatting_but_not_fields() {
        let spec = parse_spec(r#"{"experiment": "table3-1", "trace_len": 1000}"#).unwrap();
        // Same spec, noisy formatting + explicit defaults (the default
        // seed is 0x5EED_1998 = 1592596888) + reordered keys.
        let noisy = parse_spec(
            r#"{ "seed": 1592596888, "trace_len": 1000,
                 "experiment": "table3-1", "jobs": 1 }"#,
        )
        .unwrap();
        assert_eq!(spec.canonical(), noisy.canonical());
        assert_eq!(spec.canonical_hash(), noisy.canonical_hash());
        // Any canonical field changing must change the hash.
        for other in [
            JobSpec { trace_len: 1001, ..spec.clone() },
            JobSpec { seed: spec.seed + 1, ..spec.clone() },
            JobSpec { jobs: 2, ..spec.clone() },
            JobSpec { experiment: "accuracy".to_string(), ..spec.clone() },
        ] {
            assert_ne!(spec.canonical_hash(), other.canonical_hash(), "{other:?}");
        }
    }

    #[test]
    fn bench_results_are_not_cacheable() {
        assert!(!JobSpec::default().deterministic_result(), "bench has wall-clock fields");
        let table = JobSpec { experiment: "table3-1".to_string(), ..JobSpec::default() };
        assert!(table.deterministic_result());
    }

    #[test]
    fn out_of_core_lengths_need_a_capable_experiment_and_a_trace_dir() {
        let big = MAX_TRACE_LEN + 1;
        let parse =
            |text: &str, ooc| JobSpec::from_json_with_limits(&Json::parse(text).unwrap(), ooc);

        // Capable experiment + trace dir: accepted up to the OOC cap.
        let text = format!(r#"{{"experiment": "fig3-1", "trace_len": {MAX_TRACE_LEN_OOC}}}"#);
        assert_eq!(parse(&text, true).unwrap().trace_len, MAX_TRACE_LEN_OOC);

        // Capable experiment, no trace dir: the error names the missing
        // capability, not just the range.
        let text = format!(r#"{{"experiment": "bench", "trace_len": {big}}}"#);
        let err = parse(&text, false).unwrap_err();
        assert!(err.contains("trace directory"), "error should name the fix: {err}");

        // Trace dir available, but an analysis experiment: the error says
        // the experiment itself cannot replay out-of-core.
        let text = format!(r#"{{"experiment": "fig3-3", "trace_len": {big}}}"#);
        let err = parse(&text, true).unwrap_err();
        assert!(err.contains("cannot replay out-of-core"), "error should blame fig3-3: {err}");

        // Beyond even the OOC cap: plain range error.
        let text = format!(r#"{{"experiment": "fig3-1", "trace_len": {}}}"#, MAX_TRACE_LEN_OOC + 1);
        let err = parse(&text, true).unwrap_err();
        assert!(err.contains(&MAX_TRACE_LEN_OOC.to_string()), "error should name the cap: {err}");

        // Field order must not matter: trace_len before experiment.
        let text = format!(r#"{{"trace_len": {big}, "experiment": "fig5-2"}}"#);
        assert_eq!(parse(&text, true).unwrap().trace_len, big);
    }

    #[test]
    fn bench_outcome_matches_direct_run_and_exports_metrics() {
        let spec = parse_spec(r#"{"experiment": "bench", "trace_len": 2000, "seed": 3}"#).unwrap();
        let sweep = Sweep::with_jobs(&spec.config(), 1);
        let outcome = spec.run(&sweep);
        let direct = bench::run_with(&Sweep::with_jobs(&spec.config(), 1), spec.is_quick());
        for w in &direct.workloads {
            let served = outcome
                .result
                .get_path("workloads")
                .and_then(|s| s.get(w.name))
                .and_then(|s| s.get("counters"))
                .expect("served counters");
            assert_eq!(
                served.to_json(),
                w.registry.counters_json().to_json(),
                "{}: served counters differ from direct run",
                w.name
            );
        }
        for namespace in ["trace", "sched", "predictor", "machine"] {
            assert!(
                outcome.metrics.namespaces().contains(&namespace),
                "outcome metrics missing `{namespace}.*`"
            );
        }
    }

    #[test]
    fn table_experiments_return_csv() {
        let spec = parse_spec(r#"{"experiment": "table3-1", "trace_len": 1000}"#).unwrap();
        let sweep = Sweep::with_jobs(&spec.config(), 1);
        let outcome = spec.run(&sweep);
        let csv = outcome.result.get("csv").and_then(Json::as_str).expect("csv field");
        assert!(csv.lines().count() > 1, "csv should have header + rows:\n{csv}");
        assert!(outcome.metrics.is_empty());
    }

    #[test]
    fn every_listed_experiment_is_runnable() {
        // Guards EXPERIMENTS and the `table` dispatch staying in sync; use
        // a tiny trace so the whole list stays fast.
        let cfg = ExperimentConfig { trace_len: 300, ..ExperimentConfig::default() };
        let sweep = Sweep::with_jobs(&cfg, 1);
        for name in EXPERIMENTS {
            let spec =
                JobSpec { experiment: name.to_string(), trace_len: 300, ..JobSpec::default() };
            let outcome = spec.run(&sweep);
            assert!(outcome.result.as_object().is_some(), "{name}: result must be an object");
        }
    }
}
