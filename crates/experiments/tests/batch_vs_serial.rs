//! Differential test for the batch simulation kernel: every machine
//! configuration run through [`fetchvp_core::run_batch`] alongside others
//! must produce counters byte-identical to the same configuration run
//! alone through its serial machine — on all nine workloads of the
//! extended suite, at `--jobs 1` and `--jobs 8`.
//!
//! The comparison surface is the deterministic metrics JSON of each
//! [`MachineResult`]: any divergence in cycles, predictor counters,
//! front-end statistics or usefulness attribution changes the bytes.

use fetchvp_core::{
    BtbKind, FrontEnd, IdealConfig, IdealMachine, MachineConfig, RealisticConfig, RealisticMachine,
    VpConfig,
};
use fetchvp_experiments::{ExperimentConfig, Sweep};
use fetchvp_fetch::{BacConfig, TraceCacheConfig};
use fetchvp_predictor::BankedConfig;

/// A config set spanning every pipeline variant the kernel batches: ideal
/// front-ends at two widths, and realistic ones over the conventional,
/// banked-table, branch-address-cache and trace-cache paths.
fn spanning_configs() -> Vec<MachineConfig> {
    let btb = BtbKind::two_level_paper();
    vec![
        MachineConfig::Ideal(IdealConfig { fetch_rate: 4, ..IdealConfig::default() }),
        MachineConfig::Ideal(IdealConfig {
            fetch_rate: 40,
            vp: VpConfig::stride_infinite(),
            ..IdealConfig::default()
        }),
        MachineConfig::Realistic(
            RealisticConfig::paper(
                FrontEnd::Conventional { width: 40, max_taken: Some(4), btb },
                VpConfig::stride_infinite(),
            )
            .with_banked(BankedConfig::default()),
        ),
        MachineConfig::Realistic(RealisticConfig::paper(
            FrontEnd::BranchAddressCache { config: BacConfig::classic(), btb },
            VpConfig::stride_infinite(),
        )),
        MachineConfig::Realistic(RealisticConfig::paper(
            FrontEnd::TraceCache { config: TraceCacheConfig::paper(), btb },
            VpConfig::None,
        )),
    ]
}

/// The serial reference: each config alone on its own machine, no
/// batching anywhere in the cell.
fn serial_metrics(cfg: &ExperimentConfig, configs: &[MachineConfig]) -> Vec<(String, Vec<String>)> {
    Sweep::serial(cfg)
        .cells_extended(configs, |_, trace, c| match *c {
            MachineConfig::Ideal(ic) => IdealMachine::new(ic).run(trace).metrics().to_json(),
            MachineConfig::Realistic(rc) => {
                RealisticMachine::new(rc).run(trace).metrics().to_json()
            }
        })
        .into_iter()
        .map(|(name, cells)| (name.to_string(), cells.iter().map(|j| j.to_json()).collect()))
        .collect()
}

#[test]
fn batch_counters_match_serial_bytes_on_every_workload_and_job_count() {
    let cfg = ExperimentConfig { trace_len: 8_000, ..ExperimentConfig::default() };
    let configs = spanning_configs();
    let reference = serial_metrics(&cfg, &configs);
    assert_eq!(reference.len(), 9, "the extended suite has nine workloads");

    for jobs in [1usize, 8] {
        let batched: Vec<(String, Vec<String>)> = Sweep::with_jobs(&cfg, jobs)
            .machines_extended(&configs)
            .into_iter()
            .map(|(name, results)| {
                (
                    name.to_string(),
                    results.iter().map(|r| r.metrics().to_json().to_json()).collect(),
                )
            })
            .collect();
        assert_eq!(batched.len(), reference.len());
        for ((ref_name, ref_cells), (name, cells)) in reference.iter().zip(&batched) {
            assert_eq!(ref_name, name, "jobs={jobs}: workload order changed");
            assert_eq!(ref_cells.len(), cells.len(), "{name}: result count");
            for (i, (a, b)) in ref_cells.iter().zip(cells).enumerate() {
                assert_eq!(
                    a, b,
                    "jobs={jobs}, workload={name}, config #{i}: batch metrics diverged from serial"
                );
            }
        }
    }
}

#[test]
fn batching_is_insensitive_to_companions() {
    // A config's result must not depend on what it is batched with: run
    // the same config in two different batch mixes and compare bytes.
    let cfg = ExperimentConfig { trace_len: 8_000, ..ExperimentConfig::default() };
    let probe = MachineConfig::Ideal(IdealConfig {
        fetch_rate: 16,
        vp: VpConfig::stride_infinite(),
        ..IdealConfig::default()
    });
    let mut mix_a = vec![probe];
    mix_a.extend(spanning_configs());
    let mix_b = vec![probe; 3];

    let sweep = Sweep::serial(&cfg);
    let a: Vec<String> = sweep
        .machines(&mix_a)
        .into_iter()
        .map(|(_, r)| r[0].metrics().to_json().to_json())
        .collect();
    let b: Vec<String> = sweep
        .machines(&mix_b)
        .into_iter()
        .map(|(_, r)| r[2].metrics().to_json().to_json())
        .collect();
    assert_eq!(a, b, "companion configs leaked into the probe's counters");
}
