//! `perl` stand-in: anagram search via string hashing.
//!
//! The SPECint95 perl input is an anagram search: hash every word of a
//! dictionary, compare signatures, count hits. The character-fold loop is
//! data-dependent (unpredictable), while the word/cursor bookkeeping is
//! strided — a middling mix, matching perl's mid-pack position in the
//! paper's figures.

use fetchvp_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

use crate::family::{KnobBlock, Knobs};
use crate::rng::SplitMix64;
use crate::WorkloadParams;

const TEXT: u64 = 0xA0_0000;
const SIGS: u64 = 0xB0_0000;
const WORD_LEN: u64 = 6;

pub(crate) fn build(params: &WorkloadParams, knobs: &Knobs) -> Program {
    let mut rng = SplitMix64::new(params.seed ^ 0x9E21);
    let mut b = ProgramBuilder::new("perl");
    let mut kb = KnobBlock::new(params, knobs, 6);
    kb.install_data(&mut b);

    // Dictionary: fixed-length pseudo-random "words" (one char per word).
    let n_words = 512u64 * params.scale as u64;
    for i in 0..n_words * WORD_LEN {
        b.data_word(TEXT + i, 1 + rng.below(26));
    }

    let word = Reg::R1; // word index (strided)
    let cptr = Reg::R2; // character cursor (strided)
    let sig = Reg::R3; // word signature (unpredictable chain, reset per word)
    let hits = Reg::R4; // anagram-candidate count
    let words = Reg::R5; // processed-word counter (predictable)
    let k = Reg::R6; // char loop induction
    let cols = Reg::R7; // column-accounting chain (predictable backbone)
    let ch = Reg::R8;
    let t0 = Reg::R9;
    let t1 = Reg::R10;

    let word_head = b.bind_label("word");
    kb.emit(&mut b);
    b.alu(AluOp::Xor, sig, sig, sig); // fresh signature
    b.load_imm(k, WORD_LEN as i64);
    let char_head = b.bind_label("char");
    // -- fold one character into the signature (data-dependent, two levels
    //    deep), interleaved with the predictable column accounting --
    b.alu_imm(AluOp::Add, cols, cols, 1); // chain step 1
    b.load(ch, cptr, TEXT as i64);
    b.alu_imm(AluOp::Add, words, words, 2); // output-statistics counter
    b.layout_break();
    b.alu_imm(AluOp::Shl, t0, sig, 2);
    b.alu_imm(AluOp::Add, cols, cols, 3); // chain step 2
    b.alu(AluOp::Add, sig, t0, ch);
    b.alu_imm(AluOp::And, t1, ch, 1); // vowel-class test, in parallel
    b.alu(AluOp::Add, hits, hits, t1); // (data-dependent accumulate)
    b.alu_imm(AluOp::Slt, t1, ch, 13); // alphabet-half class, in parallel
    b.alu(AluOp::Xor, t0, ch, sig); // collision pre-check
    b.alu_imm(AluOp::Add, cptr, cptr, 1); // strided
    b.layout_break();
    b.alu_imm(AluOp::Add, cols, cols, 5); // chain step 3
    b.alu_imm(AluOp::Sub, k, k, 1);
    b.branch(Cond::Ne, k, Reg::R0, char_head);
    // -- probe the signature table for an anagram partner --
    b.alu_imm(AluOp::And, t0, sig, 1023);
    b.load(t1, t0, SIGS as i64);
    let no_hit = b.label("no_hit");
    b.branch(Cond::Ne, t1, sig, no_hit);
    b.alu_imm(AluOp::Add, hits, hits, 1);
    b.bind(no_hit);
    b.store(sig, t0, SIGS as i64);
    // -- next word, wrapping at the dictionary end --
    b.alu_imm(AluOp::Add, word, word, 1);
    let continue_ = b.label("continue");
    b.load_imm(t0, n_words as i64);
    b.branch(Cond::Ltu, word, t0, continue_);
    b.load_imm(word, 0);
    b.load_imm(cptr, 0);
    b.bind(continue_);
    b.jump(word_head);

    b.build().expect("perl workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_trace::trace_program;

    #[test]
    fn sustains_long_traces() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        assert_eq!(trace_program(&p, 20_000).len(), 20_000);
    }

    #[test]
    fn signatures_repeat_once_the_dictionary_wraps() {
        // After a full pass, re-hashing the same words produces the same
        // signatures, so probes must eventually hit.
        let p = build(&WorkloadParams::default(), &Knobs::default());
        let mut exec = fetchvp_trace::Executor::new(&p);
        // One word is ~85 instructions; run two dictionary passes.
        for _ in 0..(512 * 90 * 2) + 1000 {
            if exec.step().is_none() {
                break;
            }
        }
        assert!(exec.reg(Reg::R4) > 0, "no anagram candidates found after two passes");
    }

    #[test]
    fn char_loop_dominates_the_mix() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        let stats = trace_program(&p, 30_000).stats();
        // ~7 loads per ~55-instruction word iteration.
        assert!(stats.loads > 1_500, "too few loads: {}", stats.loads);
    }
}
