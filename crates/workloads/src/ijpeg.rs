//! `ijpeg` stand-in: blocked DCT-style image arithmetic.
//!
//! Image compression kernels have the most regular structure in SPECint95:
//! dense inner loops over pixel blocks with strided addressing and
//! induction variables (all stride-predictable), and a per-block
//! accumulation over loaded pixel data (data-dependent, but reset every
//! block so it never forms a long serial chain). Value prediction collapses
//! the induction-variable chains across blocks once the fetch bandwidth can
//! span a whole block.

use fetchvp_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

use crate::family::{KnobBlock, Knobs};
use crate::rng::SplitMix64;
use crate::WorkloadParams;

const IMAGE: u64 = 0x80_0000;
const OUTPUT: u64 = 0x90_0000;
const BLOCK: u64 = 4;

pub(crate) fn build(params: &WorkloadParams, knobs: &Knobs) -> Program {
    let mut rng = SplitMix64::new(params.seed ^ 0x19E6);
    let mut b = ProgramBuilder::new("ijpeg");
    let mut kb = KnobBlock::new(params, knobs, 5);
    kb.install_data(&mut b);

    // Input image: pseudo-random pixels.
    let n_pixels = 4096u64 * params.scale as u64;
    for i in 0..n_pixels {
        b.data_word(IMAGE + i, rng.below(256));
    }

    let src = Reg::R1; // input cursor (strided)
    let dst = Reg::R2; // output cursor (strided)
    let blocks = Reg::R3; // block counter (predictable)
    let chain = Reg::R4; // rate-control bookkeeping chain (predictable)
    let qsum = Reg::R5; // quality statistics (predictable)
    let p0 = Reg::R8;
    let p1 = Reg::R9;
    let p2 = Reg::R10;
    let p3 = Reg::R11;
    let s01 = Reg::R12;
    let s23 = Reg::R13;
    let t0 = Reg::R14;
    let t1 = Reg::R15;

    b.load_imm(src, 0);
    b.load_imm(dst, 0);

    // One fully-unrolled 4-point transform per iteration — image kernels
    // are unrolled straight-line code, so the data dependencies form a
    // shallow *tree* (not a loop-carried chain), while the cursors and
    // rate-control bookkeeping are strided.
    let block_head = b.bind_label("block");
    kb.emit(&mut b);
    b.alu_imm(AluOp::Add, chain, chain, 2); // chain step 1
    b.load(p0, src, IMAGE as i64); // four parallel pixel loads
    b.load(p1, src, IMAGE as i64 + 1);
    b.load(p2, src, IMAGE as i64 + 2);
    b.load(p3, src, IMAGE as i64 + 3);
    b.layout_break();
    b.alu_imm(AluOp::Add, chain, chain, 4); // chain step 2
                                            // The transform is a shallow tree: every output coefficient is at most
                                            // two levels below the pixel loads, as in a hardware-friendly unrolled
                                            // butterfly network.
    b.alu(AluOp::Add, s01, p0, p1); // DC butterfly
    b.alu(AluOp::Sub, s23, p2, p3); // AC butterfly
    b.alu(AluOp::Xor, t0, p0, p3); // parity plane, in parallel
    b.alu(AluOp::Xor, t1, p1, p2);
    b.alu(AluOp::Slt, Reg::R16, p0, p2); // range clamps, in parallel
    b.alu(AluOp::Slt, Reg::R17, p1, p3);
    b.alu(AluOp::Sub, Reg::R18, p3, p0); // gradient probes, in parallel
    b.alu(AluOp::Sub, Reg::R19, p2, p1);
    b.alu(AluOp::Slt, Reg::R20, p3, p1); // saturation probes, in parallel
    b.alu(AluOp::Sub, Reg::R21, p0, p2);
    b.alu_imm(AluOp::Add, blocks, blocks, 1);
    b.store(s01, dst, OUTPUT as i64); // DC plane
    b.alu_imm(AluOp::Add, src, src, BLOCK as i64); // induction (strided)
    b.layout_break();
    b.alu_imm(AluOp::Add, chain, chain, 6); // chain step 3
    b.store(s23, dst, OUTPUT as i64 + 0x10_0000); // AC plane
    b.alu_imm(AluOp::Add, dst, dst, 1); // induction (strided)
    b.layout_break();
    b.alu_imm(AluOp::Add, qsum, qsum, 3);
    // Wrap the cursor at the image end.
    let continue_ = b.label("continue");
    b.load_imm(t0, n_pixels as i64);
    b.branch(Cond::Ltu, src, t0, continue_);
    b.load_imm(src, 0);
    b.load_imm(dst, 0);
    b.bind(continue_);
    b.jump(block_head);

    b.build().expect("ijpeg workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_trace::trace_program;

    #[test]
    fn sustains_long_traces() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        assert_eq!(trace_program(&p, 20_000).len(), 20_000);
    }

    #[test]
    fn has_long_basic_blocks() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        let stats = trace_program(&p, 30_000).stats();
        // Regular loop code: longer runs than the branchiest benchmarks,
        // though layout breaks keep the taken-branch density realistic.
        assert!(stats.avg_run_length() > 4.0, "run length {}", stats.avg_run_length());
    }

    #[test]
    fn emits_output_blocks() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        let mut exec = fetchvp_trace::Executor::new(&p);
        for _ in 0..50_000 {
            if exec.step().is_none() {
                break;
            }
        }
        let outputs = (0..512).filter(|k| exec.memory().read(OUTPUT + k) != 0).count();
        assert!(outputs > 100, "only {outputs} output words written");
    }
}
