//! `compress` stand-in: adaptive Lempel-Ziv hashing loop.
//!
//! Compress95's inner loop hashes each input byte against an adaptive code
//! table. The hash accumulator is data-dependent (the input is effectively
//! random), so its loop-carried critical path cannot be collapsed by value
//! prediction — compress shows among the smallest gains in the paper's
//! figures.

use fetchvp_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

use crate::family::{KnobBlock, Knobs};
use crate::rng::SplitMix64;
use crate::WorkloadParams;

const INPUT: u64 = 0x50_0000;
const TABLE: u64 = 0x60_0000;
const TABLE_SLOTS: u64 = 1024;

pub(crate) fn build(params: &WorkloadParams, knobs: &Knobs) -> Program {
    let mut rng = SplitMix64::new(params.seed ^ 0xC0);
    let mut b = ProgramBuilder::new("compress");
    let mut kb = KnobBlock::new(params, knobs, 3);
    kb.install_data(&mut b);

    // Input stream: pseudo-random bytes (high entropy — worst case for LZ).
    let input_len = 4096u64 * params.scale as u64;
    for i in 0..input_len {
        b.data_word(INPUT + i, rng.below(256));
    }

    let pos = Reg::R1; // input cursor (strided)
    let hash = Reg::R2; // rolling hash (unpredictable chain)
    let in_count = Reg::R3; // bytes consumed (predictable)
    let matches = Reg::R4; // dictionary hits
    let next_code = Reg::R5; // next dictionary code (slowly strided)
    let byte = Reg::R8;
    let t0 = Reg::R9;
    let t1 = Reg::R10;
    let t2 = Reg::R11;

    b.load_imm(next_code, 256);

    let out_bits = Reg::R6; // output-length accounting chain (predictable)

    let head = b.bind_label("next_byte");
    kb.emit(&mut b);
    // -- fetch the next input byte, interleaved with the stream counters so
    //    the short address chain still spans a few instructions --
    b.alu_imm(AluOp::And, t0, pos, (input_len - 1) as i64);
    b.alu_imm(AluOp::Add, out_bits, out_bits, 9); // chain step 1
    b.alu_imm(AluOp::Add, pos, pos, 1);
    b.alu_imm(AluOp::Add, in_count, in_count, 1);
    b.layout_break();
    b.load(byte, t0, INPUT as i64); // unpredictable
    b.alu_imm(AluOp::Add, out_bits, out_bits, 2); // chain step 2
                                                  // -- rolling hash: the unpredictable loop-carried critical path --
    b.alu_imm(AluOp::Shl, t2, hash, 5);
    b.alu_imm(AluOp::Add, out_bits, out_bits, 4); // chain step 3
    b.layout_break();
    b.alu(AluOp::Xor, t2, t2, byte);
    b.alu_imm(AluOp::Add, out_bits, out_bits, 7); // chain step 4
    b.alu_imm(AluOp::And, hash, t2, (TABLE_SLOTS - 1) as i64);
    b.layout_break();
    // -- dictionary probe --
    b.load(t1, hash, TABLE as i64); // current code in the slot
    let miss = b.label("miss");
    b.branch(Cond::Eq, t1, Reg::R0, miss);
    // Hit: emit the code (count it) and fold it into the hash state. The
    // fold is a single level so the loop-carried hash chain stays at the
    // depth of the hash computation itself.
    b.alu_imm(AluOp::Add, matches, matches, 1);
    b.alu_imm(AluOp::Shr, t2, t1, 3); // code-length class, in parallel
    b.alu(AluOp::Xor, hash, hash, t1);
    b.alu(AluOp::Add, matches, matches, t2); // weighted emission count
    b.jump(head);
    // Miss: install a fresh code in the slot.
    b.bind(miss);
    b.store(next_code, hash, TABLE as i64);
    b.alu_imm(AluOp::Add, next_code, next_code, 1);
    // Table-full check: reset the dictionary like compress does.
    b.alu_imm(AluOp::And, t0, next_code, 8191);
    let no_reset = b.label("no_reset");
    b.branch(Cond::Ne, t0, Reg::R0, no_reset);
    b.load_imm(next_code, 256);
    b.bind(no_reset);
    b.jump(head);

    b.build().expect("compress workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_trace::trace_program;

    #[test]
    fn sustains_long_traces() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        assert_eq!(trace_program(&p, 20_000).len(), 20_000);
    }

    #[test]
    fn hash_values_are_not_strided() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        let t = trace_program(&p, 30_000);
        // Find the `and hash, t1, mask` results (pc of the 3rd hash step).
        let hashes: Vec<u64> =
            t.iter().filter(|r| r.dst() == Some(Reg::R2)).map(|r| r.result).collect();
        assert!(hashes.len() > 500);
        let same_delta = hashes
            .windows(3)
            .filter(|w| w[2].wrapping_sub(w[1]) == w[1].wrapping_sub(w[0]))
            .count();
        assert!((same_delta as f64) < hashes.len() as f64 * 0.2, "hash chain looks strided");
    }

    #[test]
    fn dictionary_fills_over_time() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        let mut exec = fetchvp_trace::Executor::new(&p);
        for _ in 0..100_000 {
            if exec.step().is_none() {
                break;
            }
        }
        // Table slots materialize as codes are installed.
        let table_words = (0..TABLE_SLOTS).filter(|i| exec.memory().read(TABLE + i) != 0).count();
        assert!(table_words > 100, "only {table_words} dictionary entries installed");
    }
}
