//! `li` stand-in: a list/cons-cell interpreter with real call/return flow.
//!
//! Xlisp's execution profile is dominated by short procedure calls (eval /
//! apply) and cons-cell walking. Calls and returns matter for this paper
//! twice over: returns are indirect jumps that terminate trace-cache lines,
//! and link-register values are constant per call site (perfectly
//! last-value-predictable).
//!
//! The synthetic kernel walks a list of sequentially-allocated cons cells
//! (strided pointer loads — predictable) and calls a small `eval` routine
//! on each car, which dispatches on the value's tag.

use fetchvp_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

use crate::family::{KnobBlock, Knobs};
use crate::rng::SplitMix64;
use crate::WorkloadParams;

const CELLS: u64 = 0x70_0000;
const CELL_SIZE: u64 = 16; // car, cdr

pub(crate) fn build(params: &WorkloadParams, knobs: &Knobs) -> Program {
    let mut rng = SplitMix64::new(params.seed ^ 0x11);
    let mut b = ProgramBuilder::new("li");
    let mut kb = KnobBlock::new(params, knobs, 4);
    kb.install_data(&mut b);

    // A chain of sequentially allocated cons cells, closed into a ring.
    let n_cells = (512 * params.scale as usize).max(8);
    for i in 0..n_cells {
        let addr = CELLS + i as u64 * CELL_SIZE;
        let cdr = CELLS + ((i + 1) % n_cells) as u64 * CELL_SIZE;
        // Car tags follow a short repeating pattern along the list (real
        // Lisp data is stereotyped: runs of fixnums punctuated by symbols
        // and pairs), so eval's tag-dispatch branches are learnable by a
        // history-based BTB at realistic accuracy.
        let tag_pattern = [0u64, 0, 1, 0, 0, 2, 0, 3];
        let tag = if rng.below(8) == 0 { rng.below(4) } else { tag_pattern[i % 8] };
        b.data_word(addr, (rng.next_u64() & !3) | tag); // car: tagged value
        b.data_word(addr + 8, cdr); // cdr: next cell (strided!)
    }

    let cursor = Reg::R1; // current cell (strided pointer chain)
    let evals = Reg::R2; // eval counter (predictable)
    let acc = Reg::R3; // interpreter accumulator (data-dependent)
    let conses = Reg::R4; // cons-walk counter (predictable)
    let car = Reg::R8; // argument to eval
    let ret = Reg::R31; // link register
    let t0 = Reg::R9;
    let t1 = Reg::R10;

    let eval = b.label("eval");

    b.load_imm(cursor, CELLS as i64);
    let gc_mark = Reg::R5; // mark-phase signature (unpredictable, shallow)
    let steps = Reg::R6; // interpreter step-budget chain (predictable)

    let head = b.bind_label("mapcar");
    kb.emit(&mut b);
    // -- interpreter bookkeeping: a multi-step, path-independent chain
    //    (step budget accounting) is the serial backbone a value predictor
    //    can collapse --
    b.alu_imm(AluOp::Add, steps, steps, 2); // chain step 1
                                            // -- walk the list (strided loads) --
    b.load(car, cursor, 0);
    b.load(cursor, cursor, 8); // cdr: advances by CELL_SIZE (predictable)
    b.alu_imm(AluOp::Add, conses, conses, 1);
    b.alu_imm(AluOp::Add, steps, steps, 4); // chain step 2
    b.layout_break();
    // -- mark-phase bookkeeping (unpredictable but only one level deep) --
    b.alu(AluOp::Xor, gc_mark, gc_mark, car);
    // -- apply eval to the car --
    b.call(eval, ret);
    b.alu_imm(AluOp::Add, evals, evals, 1);
    b.alu_imm(AluOp::Add, steps, steps, 8); // chain step 3
    b.jump(head);

    // eval(car): dispatch on the tag bits of the value.
    b.bind(eval);
    b.alu_imm(AluOp::And, t0, car, 3);
    let fixnum = b.label("fixnum");
    let symbol = b.label("symbol");
    let ret_label = b.label("eval_ret");
    b.branch(Cond::Eq, t0, Reg::R0, fixnum);
    b.alu_imm(AluOp::Sub, t1, t0, 1);
    b.branch(Cond::Eq, t1, Reg::R0, symbol);
    // Pair/other: fold the raw pointer bits into the accumulator.
    b.alu_imm(AluOp::Shr, t1, car, 4);
    b.alu(AluOp::Xor, acc, acc, t1);
    b.jump(ret_label);
    b.bind(fixnum); // arithmetic on the immediate
    b.alu_imm(AluOp::Shr, t1, car, 2);
    b.alu_imm(AluOp::And, t0, car, 1023); // range tag, in parallel
    b.alu(AluOp::Add, acc, acc, t1);
    b.alu(AluOp::Or, acc, acc, t0);
    b.jump(ret_label);
    b.bind(symbol); // symbol lookup: probe its property cell
    b.alu_imm(AluOp::And, t1, car, ((512u64 * CELL_SIZE) - 1) as i64 & !0xf);
    b.load_imm(t0, CELLS as i64);
    b.alu(AluOp::Add, t1, t0, t1);
    b.load(t1, t1, 0);
    b.alu(AluOp::Xor, acc, acc, t1);
    b.bind(ret_label);
    b.jump_ind(ret); // return: indirect jump

    b.build().expect("li workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_isa::Instr;
    use fetchvp_trace::trace_program;

    #[test]
    fn sustains_long_traces() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        assert_eq!(trace_program(&p, 20_000).len(), 20_000);
    }

    #[test]
    fn performs_calls_and_returns() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        let t = trace_program(&p, 20_000);
        let calls = t.iter().filter(|r| matches!(r.instr, Instr::Call { .. })).count();
        let returns = t.iter().filter(|r| matches!(r.instr, Instr::JumpInd { .. })).count();
        assert!(calls > 500, "{calls} calls");
        // The trace limit may cut execution between a call and its return.
        assert!(calls.abs_diff(returns) <= 1, "calls {calls} vs returns {returns}");
    }

    #[test]
    fn cdr_loads_are_strided() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        let t = trace_program(&p, 30_000);
        let cdrs: Vec<u64> = t
            .iter()
            .filter(|r| r.dst() == Some(Reg::R1) && r.instr.is_mem())
            .map(|r| r.result)
            .collect();
        assert!(cdrs.len() > 100);
        let strided = cdrs.windows(2).filter(|w| w[1].wrapping_sub(w[0]) == CELL_SIZE).count();
        assert!(
            strided as f64 > cdrs.len() as f64 * 0.9,
            "cons walk not strided: {strided}/{}",
            cdrs.len()
        );
    }
}
