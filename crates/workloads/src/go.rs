//! `go` stand-in: board-game position evaluation.
//!
//! Go is the branchiest SPECint95 benchmark: short basic blocks, highly
//! data-dependent control flow, and values that follow no arithmetic
//! pattern. Its value-prediction speedup in the paper is consequently small
//! at every fetch rate.
//!
//! The synthetic kernel alternates a pseudo-random move generator (an
//! xorshift chain — inherently unpredictable and loop-carried, so value
//! prediction cannot break the critical path) with data-dependent board
//! reads and branch-heavy liberty scoring.

use fetchvp_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

use crate::family::{KnobBlock, Knobs};
use crate::rng::SplitMix64;
use crate::WorkloadParams;

const BOARD: u64 = 0x40_0000;

pub(crate) fn build(params: &WorkloadParams, knobs: &Knobs) -> Program {
    let mut rng = SplitMix64::new(params.seed ^ 0x60);
    let mut b = ProgramBuilder::new("go");
    let mut kb = KnobBlock::new(params, knobs, 0);
    kb.install_data(&mut b);

    // A 19x19-ish board padded to 512 slots: 0 empty, 1 black, 2 white.
    let slots = 512u64 * params.scale as u64;
    for i in 0..slots {
        b.data_word(BOARD + i, rng.below(3));
    }

    let state = Reg::R1; // xorshift state (unpredictable loop-carried chain)
    let score = Reg::R2; // running evaluation (data-dependent)
    let moves = Reg::R3; // move counter (the lone predictable chain)
    let t0 = Reg::R9;
    let t1 = Reg::R10;
    let t2 = Reg::R11;
    let stone = Reg::R12;

    b.load_imm(state, 0x2545_F491_4F6C_DD1D_u64 as i64);

    let evals = Reg::R4; // evaluated-position counter
    let t3 = Reg::R13;

    let heur = Reg::R5; // heuristic-budget chain (the lone predictable
                        // backbone; go's is short and its gain small)

    let head = b.bind_label("genmove");
    kb.emit(&mut b);
    // -- xorshift move generator (two stages, a 4-deep unpredictable
    //    loop-carried chain), interleaved with independent bookkeeping so
    //    that even these dependencies span a few instructions --
    b.alu_imm(AluOp::Shl, t0, state, 13);
    b.alu_imm(AluOp::Add, heur, heur, 3); // chain step 1
    b.alu_imm(AluOp::Add, moves, moves, 1);
    b.alu(AluOp::Xor, state, state, t0);
    b.alu_imm(AluOp::Add, heur, heur, 5); // chain step 2
    b.layout_break();
    b.alu_imm(AluOp::Add, evals, evals, 2);
    b.alu_imm(AluOp::Shr, t3, state, 17);
    b.alu_imm(AluOp::Add, heur, heur, 7); // chain step 3
    b.alu(AluOp::Xor, state, state, t3);
    b.alu_imm(AluOp::And, t1, state, (slots - 1) as i64);
    b.alu_imm(AluOp::Add, heur, heur, 9); // chain step 4
    b.layout_break();
    b.alu_imm(AluOp::Add, heur, heur, 11); // chain step 5
                                           // -- probe the board at the generated point --
    b.load(stone, t1, BOARD as i64); // 0/1/2, data-dependent
                                     // -- branchy liberty scoring --
    let occupied = b.label("occupied");
    let white = b.label("white");
    let done = b.label("done");
    b.branch(Cond::Ne, stone, Reg::R0, occupied);
    // Empty point: play here (flip to black), small reward.
    b.alu_imm(AluOp::Add, score, score, 2);
    b.load_imm(t2, 1);
    b.store(t2, t1, BOARD as i64);
    b.jump(done);
    b.bind(occupied);
    b.alu_imm(AluOp::Sub, t0, stone, 2);
    b.branch(Cond::Eq, t0, Reg::R0, white);
    // Black stone: reward depends on parity of the generator state.
    b.alu_imm(AluOp::And, t0, state, 1);
    let even = b.label("even");
    b.branch(Cond::Eq, t0, Reg::R0, even);
    b.alu_imm(AluOp::Add, score, score, 1);
    b.bind(even);
    b.jump(done);
    b.bind(white);
    // White stone: capture check — clear the point now and then.
    b.alu_imm(AluOp::And, t0, state, 7);
    let keep = b.label("keep");
    b.branch(Cond::Ne, t0, Reg::R0, keep);
    b.store(Reg::R0, t1, BOARD as i64);
    b.alu_imm(AluOp::Sub, score, score, 1);
    b.bind(keep);
    b.bind(done);
    b.jump(head);

    b.build().expect("go workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_trace::trace_program;

    #[test]
    fn sustains_long_traces() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        assert_eq!(trace_program(&p, 20_000).len(), 20_000);
    }

    #[test]
    fn is_branchy() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        let stats = trace_program(&p, 30_000).stats();
        // Go's signature: short dynamic basic blocks.
        assert!(stats.avg_run_length() < 12.0, "run length {}", stats.avg_run_length());
    }

    #[test]
    fn board_reads_cover_the_board() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        let t = trace_program(&p, 60_000);
        let addrs: std::collections::HashSet<u64> = t.iter().filter_map(|r| r.mem_addr).collect();
        assert!(addrs.len() > 200, "only {} distinct board slots touched", addrs.len());
    }
}
