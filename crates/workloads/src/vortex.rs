//! `vortex` stand-in: object-oriented database transactions.
//!
//! Vortex is the paper's other outlier benchmark: more than 55% of its
//! dependencies are value-predictable with DID ≥ 4 (Figure 3.5), and its
//! ideal-machine value-prediction speedup climbs from 1.5% at fetch-4 to
//! 83% at fetch-16 (Figure 3.1).
//!
//! The synthetic kernel models an insert-then-query transaction loop:
//! allocate an object from a bump allocator (strided addresses), initialize
//! its fields (strided ids), link it into the object chain, update the
//! index, and read back a field of an earlier object. Because both the
//! addresses *and* the stored field values advance by constant strides,
//! almost every dependence — including the loaded values — is perfectly
//! stride-predictable, but the dependencies are spread across a long
//! transaction body, so exploiting them requires fetch bandwidth.

use fetchvp_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

use crate::family::{KnobBlock, Knobs};
use crate::WorkloadParams;

const HEAP: u64 = 0x10_0000;
const INDEX: u64 = 0x20_0000;
const OBJ_SIZE: u64 = 32; // four 8-byte fields

pub(crate) fn build(params: &WorkloadParams, knobs: &Knobs) -> Program {
    // Vortex's data is entirely self-generated (strided object ids), so the
    // seed does not enter this workload.
    let mut b = ProgramBuilder::new("vortex");
    let mut kb = KnobBlock::new(params, knobs, 7);
    kb.install_data(&mut b);

    let alloc = Reg::R1; // bump allocator (strided)
    let obj_id = Reg::R2; // monotone object id (strided)
    let commits = Reg::R3; // committed-transaction counter
    let chain = Reg::R4; // transaction bookkeeping chain (critical path)
    let t0 = Reg::R9;
    let t1 = Reg::R10;
    let t2 = Reg::R11;
    let t3 = Reg::R12;
    let index_n = Reg::R5; // index-entry counter
    let reads = Reg::R6; // query counter

    b.load_imm(alloc, HEAP as i64);

    let sig = Reg::R7; // record signature (XOR accumulator: unpredictable)
    let qid = Reg::R8; // the queried object's id

    let head = b.bind_label("txn");
    kb.emit(&mut b);
    // The transaction body interleaves its four activities (allocation,
    // field init, index update, query) so that each dependence spans
    // several instructions — vortex's predictable dependencies are *long*
    // in the paper (>55% predictable with DID >= 4).
    b.alu_imm(AluOp::Add, chain, chain, 5); // bookkeeping chain step 1
    b.alu_imm(AluOp::Add, obj_id, obj_id, 1); // strided, DID = body
    b.alu_imm(AluOp::Add, index_n, index_n, 1);
    b.alu_imm(AluOp::Add, alloc, alloc, OBJ_SIZE as i64); // strided
    b.alu_imm(AluOp::Add, Reg::R13, Reg::R13, 3); // index version stamp (strided)
    b.store(obj_id, alloc, 0); // field 0: id (uses obj_id at distance 4)
    b.layout_break();
    b.alu_imm(AluOp::And, t3, obj_id, 255); // index bucket (cyclic)
    b.alu_imm(AluOp::Sub, t0, alloc, (16 * OBJ_SIZE) as i64);
    b.alu_imm(AluOp::Mul, t1, obj_id, 3);
    b.alu_imm(AluOp::Add, chain, chain, 7); // chain step 2
    b.load(qid, t0, 0); // query: id written 16 txns ago (strided values!)
    b.store(t1, alloc, 8); // field 1: derived key
    b.layout_break();
    b.alu_imm(AluOp::Sub, t1, alloc, OBJ_SIZE as i64);
    b.alu(AluOp::Xor, sig, sig, qid); // record signature (unpredictable)
    b.store(t1, alloc, 16); // field 2: link to previous object
    b.store(alloc, t3, INDEX as i64); // index bucket points at the object
    b.layout_break();
    b.alu_imm(AluOp::Add, reads, reads, 1);
    b.alu_imm(AluOp::Add, chain, chain, 3); // chain step 3
                                            // Validate the read (biased, well-predicted branch).
    let ok = b.label("read_ok");
    b.branch(Cond::Ltu, qid, obj_id, ok);
    b.alu_imm(AluOp::Add, t2, t2, 1); // never on the hot path
    b.bind(ok);
    // -- occasionally rewind the allocator so the heap footprint is finite --
    let no_wrap = b.label("no_wrap");
    b.alu_imm(AluOp::And, t2, obj_id, 4095);
    b.branch(Cond::Ne, t2, Reg::R0, no_wrap);
    b.load_imm(alloc, HEAP as i64);
    b.bind(no_wrap);
    // -- commit: trailing bookkeeping --
    b.alu_imm(AluOp::Add, commits, commits, 1);
    b.alu_imm(AluOp::Add, chain, chain, 9); // chain step 4
    b.jump(head);

    b.build().expect("vortex workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_trace::trace_program;

    #[test]
    fn sustains_long_traces() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        assert_eq!(trace_program(&p, 20_000).len(), 20_000);
    }

    #[test]
    fn queried_ids_are_strided() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        let t = trace_program(&p, 50_000);
        // The query load (the only load in the program) returns ids that
        // advance by exactly 1 once the pipeline of 16 objects is primed.
        let loads: Vec<u64> =
            t.iter().filter(|r| r.instr.is_mem() && r.dst().is_some()).map(|r| r.result).collect();
        let strided = loads.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(strided as f64 > loads.len() as f64 * 0.9, "query loads are not strided");
    }

    #[test]
    fn heap_footprint_is_bounded() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        let mut exec = fetchvp_trace::Executor::new(&p);
        for _ in 0..200_000 {
            if exec.step().is_none() {
                break;
            }
        }
        assert!(exec.memory().footprint() < 40_000);
    }
}
