//! `mgrid` stand-in: a multigrid stencil relaxation kernel.
//!
//! mgrid is a SPECfp95 benchmark, yet it appears on the x-axis of the
//! paper's Figure 5.3 alongside the integer suite, so this crate provides a
//! stand-in for completeness. Scientific stencil code is the extreme of
//! regularity: long unit-stride sweeps, perfectly affine index arithmetic,
//! and wide data parallelism — its induction structure is almost entirely
//! stride-predictable, while the stencil sums themselves depend on the
//! (unpredictable) grid values.

use fetchvp_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

use crate::family::{KnobBlock, Knobs};
use crate::rng::SplitMix64;
use crate::WorkloadParams;

const GRID: u64 = 0xC0_0000;
const OUT: u64 = 0xD0_0000;

pub(crate) fn build(params: &WorkloadParams, knobs: &Knobs) -> Program {
    let mut rng = SplitMix64::new(params.seed ^ 0x916D);
    let mut b = ProgramBuilder::new("mgrid");
    let mut kb = KnobBlock::new(params, knobs, 8);
    kb.install_data(&mut b);

    // A 1-D restriction of the 3-D grid: enough to express the stencil's
    // dependence structure (neighbour loads + weighted sum).
    let n = 2048u64 * params.scale as u64;
    for i in 0..n {
        b.data_word(GRID + i, rng.below(1 << 20));
    }

    let i = Reg::R1; // sweep cursor (strided)
    let sweeps = Reg::R2; // completed-sweep counter (strided)
    let chain = Reg::R3; // residual-norm accounting chain (predictable)
    let left = Reg::R8;
    let mid = Reg::R9;
    let right = Reg::R10;
    let acc = Reg::R11;
    let t0 = Reg::R12;

    b.load_imm(i, 1);

    let head = b.bind_label("relax");
    kb.emit(&mut b);
    // -- one stencil point per iteration: load the 3-point neighbourhood --
    b.alu_imm(AluOp::Add, chain, chain, 3); // chain step 1
    b.load(left, i, GRID as i64 - 1);
    b.load(mid, i, GRID as i64);
    b.load(right, i, GRID as i64 + 1);
    b.layout_break();
    // -- weighted relaxation: a shallow tree over the loads --
    b.alu(AluOp::Add, acc, left, right);
    b.alu_imm(AluOp::Shl, t0, mid, 1);
    b.alu_imm(AluOp::Add, chain, chain, 5); // chain step 2
    b.alu(AluOp::Add, acc, acc, t0);
    b.alu_imm(AluOp::Shr, acc, acc, 2); // (left + 2*mid + right) / 4
    b.store(acc, i, OUT as i64);
    b.layout_break();
    b.alu_imm(AluOp::Add, i, i, 1); // unit stride (predictable)
    b.alu_imm(AluOp::Add, chain, chain, 7); // chain step 3
                                            // -- end of sweep: restart from the left edge. The wrap branch is
                                            //    almost never taken — stencil sweeps are long straight runs. --
    let wrap = b.label("wrap");
    b.load_imm(t0, (n - 1) as i64);
    b.branch(Cond::Geu, i, t0, wrap);
    b.jump(head);
    b.bind(wrap);
    b.load_imm(i, 1);
    b.alu_imm(AluOp::Add, sweeps, sweeps, 1);
    b.jump(head);

    b.build().expect("mgrid workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_trace::trace_program;

    #[test]
    fn sustains_long_traces() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        assert_eq!(trace_program(&p, 20_000).len(), 20_000);
    }

    #[test]
    fn is_the_most_regular_workload() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        let stats = trace_program(&p, 30_000).stats();
        // Long sweeps: very few conditional branches are taken.
        assert!(stats.taken_branch_rate() < 0.05, "{}", stats.taken_branch_rate());
    }

    #[test]
    fn writes_the_output_grid() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        let mut exec = fetchvp_trace::Executor::new(&p);
        for _ in 0..50_000 {
            if exec.step().is_none() {
                break;
            }
        }
        let written = (1..512).filter(|k| exec.memory().read(OUT + k) != 0).count();
        assert!(written > 400, "only {written} stencil outputs written");
    }
}
