//! Synthetic SPECint95-like benchmark programs.
//!
//! The paper traces the 8 SPECint95 integer benchmarks with Sun's Shade
//! tracer. Those binaries and traces are not reproducible here, so this
//! crate provides **synthetic stand-ins**: one program per benchmark whose
//! *trace-level statistics* — dynamic-instruction-distance (DID)
//! distribution, value predictability, taken-branch density and basic-block
//! size — are tuned to the per-benchmark characteristics the paper reports
//! (see `DESIGN.md` §2 for the substitution argument):
//!
//! | benchmark | modelled kernel | key property (paper) |
//! |---|---|---|
//! | `go` | board scan + pseudo-random move evaluation | branchy, low predictability |
//! | `m88ksim` | processor simulator dispatch loop | ~40% predictable deps with DID ≥ 4 |
//! | `gcc` | IR pass over pointer-linked nodes | moderate, large footprint |
//! | `compress` | adaptive LZ hashing loop | low predictability |
//! | `li` | recursive list interpreter | call/return heavy |
//! | `ijpeg` | blocked DCT-style arithmetic | regular, high ILP |
//! | `perl` | anagram/string hashing | mixed |
//! | `vortex` | OO database transactions | >55% predictable deps with DID ≥ 4 |
//! | `mgrid` | multigrid stencil relaxation (SPECfp95, extended suite) | appears on the paper's Figure 5.3 axis |
//!
//! All workloads run as endless outer loops: drive them with
//! [`fetchvp_trace::trace_program`] and an instruction budget, exactly as
//! the paper caps each Shade trace at 100M instructions.
//!
//! # Example
//!
//! ```
//! use fetchvp_trace::trace_program;
//! use fetchvp_workloads::{suite, WorkloadParams};
//!
//! let workloads = suite(&WorkloadParams::default());
//! assert_eq!(workloads.len(), 8);
//! let trace = trace_program(workloads[1].program(), 10_000); // m88ksim
//! assert_eq!(trace.len(), 10_000);
//! ```

mod compress;
pub mod family;
mod gcc;
mod go;
mod ijpeg;
mod li;
mod perl;
pub mod rng;
mod vortex;

mod m88ksim;
mod mgrid;

use fetchvp_isa::Program;

pub use family::{families, family_by_name, FamilyPoint, Knobs, WorkloadFamily};

/// Scaling and seeding parameters shared by all workload generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadParams {
    /// Seed for the deterministic data generators (input text, boards,
    /// permutations). Two equal seeds produce identical programs.
    pub seed: u64,
    /// Data-size multiplier (tables, input lengths). `1` keeps every
    /// workload's data small enough for fast unit tests.
    pub scale: u32,
}

impl Default for WorkloadParams {
    fn default() -> WorkloadParams {
        WorkloadParams { seed: 0x5EED_1998, scale: 1 }
    }
}

/// A named benchmark program with its SPECint95 counterpart's description
/// (the paper's Table 3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    name: &'static str,
    description: &'static str,
    program: Program,
}

impl Workload {
    /// The benchmark's (SPEC) name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The paper's Table 3.1 description of the benchmark being modelled.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// The synthetic program.
    pub fn program(&self) -> &Program {
        &self.program
    }
}

/// Builds the extended suite: the 8 integer benchmarks plus `mgrid`, the
/// SPECfp stencil kernel that appears on the axis of the paper's
/// Figure 5.3.
pub fn extended_suite(params: &WorkloadParams) -> Vec<Workload> {
    let mut all = suite(params);
    all.push(Workload {
        name: "mgrid",
        description: "Multi-grid solver in 3D potential field (SPECfp95).",
        program: mgrid::build(params, &Knobs::default()),
    });
    all
}

/// Builds the full 8-benchmark suite in the paper's order.
pub fn suite(params: &WorkloadParams) -> Vec<Workload> {
    vec![
        Workload {
            name: "go",
            description: "Game playing.",
            program: go::build(params, &Knobs::default()),
        },
        Workload {
            name: "m88ksim",
            description: "A simulator for the 88100 processor.",
            program: m88ksim::build(params, &Knobs::default()),
        },
        Workload {
            name: "gcc",
            description: "A GNU C compiler version 2.5.3.",
            program: gcc::build(params, &Knobs::default()),
        },
        Workload {
            name: "compress",
            description: "Data compression program using adaptive Lempel-Ziv coding.",
            program: compress::build(params, &Knobs::default()),
        },
        Workload {
            name: "li",
            description: "Lisp interpreter.",
            program: li::build(params, &Knobs::default()),
        },
        Workload {
            name: "ijpeg",
            description: "JPEG encoder.",
            program: ijpeg::build(params, &Knobs::default()),
        },
        Workload {
            name: "perl",
            description: "Anagram search program.",
            program: perl::build(params, &Knobs::default()),
        },
        Workload {
            name: "vortex",
            description: "A single-user object-oriented database transaction benchmark.",
            program: vortex::build(params, &Knobs::default()),
        },
    ]
}

/// Builds one workload by name.
///
/// Returns `None` for an unknown name. Valid names are the SPECint95 ones —
/// `go`, `m88ksim`, `gcc`, `compress`, `li`, `ijpeg`, `perl`, `vortex` —
/// plus `mgrid` (see [`extended_suite`]).
pub fn by_name(name: &str, params: &WorkloadParams) -> Option<Workload> {
    extended_suite(params).into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_trace::trace_program;

    #[test]
    fn suite_has_eight_benchmarks_in_paper_order() {
        let names: Vec<_> = suite(&WorkloadParams::default()).iter().map(|w| w.name()).collect();
        assert_eq!(names, ["go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl", "vortex"]);
    }

    #[test]
    fn extended_suite_appends_mgrid() {
        let all = extended_suite(&WorkloadParams::default());
        assert_eq!(all.len(), 9);
        assert_eq!(all.last().unwrap().name(), "mgrid");
    }

    #[test]
    fn by_name_finds_each_benchmark() {
        let p = WorkloadParams::default();
        for name in ["go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl", "vortex", "mgrid"] {
            assert_eq!(by_name(name, &p).expect("known name").name(), name);
        }
        assert!(by_name("nonesuch", &p).is_none());
    }

    #[test]
    fn workloads_are_deterministic() {
        let p = WorkloadParams::default();
        let a = suite(&p);
        let b = suite(&p);
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(wa.program(), wb.program());
        }
    }

    #[test]
    fn different_seeds_change_data_but_not_structure() {
        let a = suite(&WorkloadParams { seed: 1, scale: 1 });
        let b = suite(&WorkloadParams { seed: 2, scale: 1 });
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(wa.program().len(), wb.program().len(), "{}", wa.name());
        }
    }

    #[test]
    fn every_workload_sustains_a_long_trace() {
        for w in suite(&WorkloadParams::default()) {
            let trace = trace_program(w.program(), 50_000);
            assert_eq!(trace.len(), 50_000, "{} halted early", w.name());
        }
    }

    #[test]
    fn every_workload_touches_all_instruction_classes_needed() {
        for w in suite(&WorkloadParams::default()) {
            let stats = trace_program(w.program(), 50_000).stats();
            assert!(stats.control > 0, "{} has no control flow", w.name());
            assert!(stats.value_producing > 0, "{} produces no values", w.name());
            assert!(
                stats.taken_control_rate() > 0.01,
                "{} has implausibly few taken branches",
                w.name()
            );
        }
    }
}
