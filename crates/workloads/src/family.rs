//! Parameterized workload **families**: every fixed benchmark generalized
//! into a continuous neighbourhood of programs.
//!
//! The nine synthetic benchmarks are single points in workload space. A
//! [`WorkloadFamily`] keeps each benchmark's hand-tuned kernel and grafts a
//! *knob block* into its main loop: a short instruction sequence whose
//! shape is controlled by the continuous [`Knobs`]. The grafting is
//! strictly **additive** — with the all-zero [`Knobs::default`] the block
//! emits no instructions and no data, so the legacy benchmark is the exact
//! origin point of its family (byte-identical program, byte-identical
//! trace), which the differential tests enforce.
//!
//! Knob semantics (each knob scales one trace-level property the paper
//! measures):
//!
//! * `did` — dependence-distance stretch: `round(did × 4)` spacer `nop`s
//!   per iteration push loop-carried producers and consumers further apart
//!   (the paper's dynamic instruction distance, §3.2).
//! * `mix_constant` / `mix_stride` / `mix_periodic` / `mix_random` —
//!   value-pattern mix: `round(knob × 4)` extra value producers per
//!   iteration of the corresponding predictability class (repeated
//!   immediate load, strided accumulator, period-2 toggle, table-random
//!   load).
//! * `branch_entropy` — when positive, one extra data-dependent branch per
//!   iteration taken with probability ≈ `branch_entropy` (maximum entropy
//!   at 0.5; 0 leaves the kernel's control flow untouched).
//! * `mem_density` — `round(knob × 4)` extra store/load pairs per
//!   iteration on a private scratch region.
//!
//! A [`FamilyPoint`] names one sampled program — `(family, knobs, seed)` —
//! and [`FamilyPoint::sample`] draws points on a 1/64 grid so a printed
//! point round-trips exactly through its decimal rendering (the fuzzing
//! repro tuples depend on this).
//!
//! # Example
//!
//! ```
//! use fetchvp_workloads::family::{families, FamilyPoint, Knobs};
//!
//! assert_eq!(families().len(), 9);
//! // The legacy benchmark is the all-zero point of its family.
//! let origin = FamilyPoint::legacy("gcc").unwrap();
//! assert_eq!(origin.knobs, Knobs::default());
//! let program = origin.program();
//! assert!(program.len() > 0);
//! ```

use fetchvp_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

use crate::rng::SplitMix64;
use crate::{compress, gcc, go, ijpeg, li, m88ksim, mgrid, perl, vortex, WorkloadParams};

/// Base address of the knob block's random-value table (no legacy workload
/// touches addresses at or above `0xE0_0000`).
const TABLE: u64 = 0xE0_0000;
/// Words in the random-value table (power of two for cheap masking).
const TABLE_WORDS: u64 = 1024;
/// Base address of the knob block's private store/load scratch region.
const SCRATCH: u64 = 0xF0_0000;
/// Words in the scratch region (power of two for cheap masking).
const SCRATCH_WORDS: u64 = 256;

// Registers reserved for the knob block. The legacy kernels use R1–R21
// (plus R31 as li's link register), so R24–R30 are free in every family.
const KNOB_CONST: Reg = Reg::R24;
const KNOB_STRIDE: Reg = Reg::R25;
const KNOB_PERIODIC: Reg = Reg::R26;
const KNOB_CURSOR: Reg = Reg::R27;
const KNOB_VALUE: Reg = Reg::R28;
const KNOB_THRESH: Reg = Reg::R29;
const KNOB_ADDR: Reg = Reg::R30;

/// Emitted instructions per unit of the `did` knob.
const DID_UNIT: f64 = 4.0;
/// Emitted value producers per unit of each `mix_*` knob.
const MIX_UNIT: f64 = 4.0;
/// Emitted store/load pairs per unit of the `mem_density` knob.
const MEM_UNIT: f64 = 4.0;

/// Continuous workload-space coordinates. [`Knobs::default`] (all zeros)
/// is the legacy benchmark itself; see the module docs for what each axis
/// stretches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Knobs {
    /// Dependence-distance stretch (spacer instructions), `0.0..=4.0`.
    pub did: f64,
    /// Extra constant-value producers per iteration, `0.0..=1.0`.
    pub mix_constant: f64,
    /// Extra strided-value producers per iteration, `0.0..=1.0`.
    pub mix_stride: f64,
    /// Extra period-2 value producers per iteration, `0.0..=1.0`.
    pub mix_periodic: f64,
    /// Extra random-value producers per iteration, `0.0..=1.0`.
    pub mix_random: f64,
    /// Taken-probability of one extra data-dependent branch per iteration
    /// (`0.0` emits no branch), `0.0..=1.0`.
    pub branch_entropy: f64,
    /// Extra store/load pairs per iteration, `0.0..=1.0`.
    pub mem_density: f64,
}

impl Default for Knobs {
    fn default() -> Knobs {
        Knobs {
            did: 0.0,
            mix_constant: 0.0,
            mix_stride: 0.0,
            mix_periodic: 0.0,
            mix_random: 0.0,
            branch_entropy: 0.0,
            mem_density: 0.0,
        }
    }
}

impl Knobs {
    /// `(key, value)` view of every knob, in the canonical rendering
    /// order used by [`std::fmt::Display`] and the repro-tuple parsers.
    pub fn fields(&self) -> [(&'static str, f64); 7] {
        [
            ("did", self.did),
            ("const", self.mix_constant),
            ("stride", self.mix_stride),
            ("periodic", self.mix_periodic),
            ("random", self.mix_random),
            ("bentropy", self.branch_entropy),
            ("mem", self.mem_density),
        ]
    }

    /// Sets one knob by its canonical key (see [`Knobs::fields`]).
    /// Returns `false` for an unknown key.
    pub fn set(&mut self, key: &str, value: f64) -> bool {
        match key {
            "did" => self.did = value,
            "const" => self.mix_constant = value,
            "stride" => self.mix_stride = value,
            "periodic" => self.mix_periodic = value,
            "random" => self.mix_random = value,
            "bentropy" => self.branch_entropy = value,
            "mem" => self.mem_density = value,
            _ => return false,
        }
        true
    }

    /// True at the all-zero origin — the legacy benchmark point, where the
    /// knob block emits nothing.
    pub fn is_origin(&self) -> bool {
        *self == Knobs::default()
    }
}

impl std::fmt::Display for Knobs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, (key, value)) in self.fields().into_iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            // `{}` on f64 is shortest-round-trip: parsing the rendering
            // recovers the exact value, which the repro tuples rely on.
            write!(f, "{key}={value}")?;
        }
        Ok(())
    }
}

/// Instruction count for a knob at `unit` instructions per knob unit.
fn knob_count(knob: f64, unit: f64) -> u32 {
    (knob.clamp(0.0, 8.0) * unit).round() as u32
}

/// The per-family knob-block emitter.
///
/// Construct once per build, install its data words, then call
/// [`KnobBlock::emit`] at one point inside the kernel's main loop. At the
/// all-zero origin every method is a no-op, so the legacy program bytes
/// are untouched.
pub(crate) struct KnobBlock {
    n_did: u32,
    n_const: u32,
    n_stride: u32,
    n_periodic: u32,
    n_random: u32,
    n_mem: u32,
    /// 32-bit taken-threshold of the entropy branch; `None` emits none.
    taken_threshold: Option<u64>,
    const_value: i64,
    stride_step: i64,
    period_xor: i64,
    /// Random table words, empty unless a knob reads the table.
    table_words: Vec<u64>,
    next_label: u32,
}

impl KnobBlock {
    /// Derives the block shape from the knobs. The block's data draws come
    /// from its own generator (`seed ^ 0xFA41 ^ family_tag`) so it never
    /// perturbs the kernel's existing random streams.
    pub(crate) fn new(params: &WorkloadParams, knobs: &Knobs, family_tag: u64) -> KnobBlock {
        let mut rng = SplitMix64::new(params.seed ^ 0xFA41 ^ family_tag);
        let const_value = rng.below(1 << 20) as i64;
        let stride_step = 1 + rng.below(61) as i64;
        let period_xor = 1 + rng.below(1 << 16) as i64;
        let n_random = knob_count(knobs.mix_random, MIX_UNIT);
        let taken_threshold = if knobs.branch_entropy > 0.0 {
            Some((knobs.branch_entropy.clamp(0.0, 1.0) * 4_294_967_296.0) as u64)
        } else {
            None
        };
        let table_words = if n_random > 0 || taken_threshold.is_some() {
            (0..TABLE_WORDS).map(|_| rng.next_u64()).collect()
        } else {
            Vec::new()
        };
        KnobBlock {
            n_did: knob_count(knobs.did, DID_UNIT),
            n_const: knob_count(knobs.mix_constant, MIX_UNIT),
            n_stride: knob_count(knobs.mix_stride, MIX_UNIT),
            n_periodic: knob_count(knobs.mix_periodic, MIX_UNIT),
            n_random,
            n_mem: knob_count(knobs.mem_density, MEM_UNIT),
            taken_threshold,
            const_value,
            stride_step,
            period_xor,
            table_words,
            next_label: 0,
        }
    }

    /// Installs the random-value table, when any knob reads it.
    pub(crate) fn install_data(&self, b: &mut ProgramBuilder) {
        for (i, word) in self.table_words.iter().enumerate() {
            b.data_word(TABLE + i as u64, *word);
        }
    }

    /// Emits one knob block. Call exactly once, inside the kernel's main
    /// loop, so the block executes every iteration.
    pub(crate) fn emit(&mut self, b: &mut ProgramBuilder) {
        // Dependence-distance stretch: pure spacing, no values.
        for _ in 0..self.n_did {
            b.nop();
        }
        // Value-pattern mix: one producer class per knob.
        for i in 0..self.n_const {
            b.load_imm(KNOB_CONST, self.const_value + i as i64);
        }
        for _ in 0..self.n_stride {
            b.alu_imm(AluOp::Add, KNOB_STRIDE, KNOB_STRIDE, self.stride_step);
        }
        for _ in 0..self.n_periodic {
            b.alu_imm(AluOp::Xor, KNOB_PERIODIC, KNOB_PERIODIC, self.period_xor);
        }
        for _ in 0..self.n_random {
            b.alu_imm(AluOp::Add, KNOB_CURSOR, KNOB_CURSOR, 1);
            b.alu_imm(AluOp::And, KNOB_ADDR, KNOB_CURSOR, (TABLE_WORDS - 1) as i64);
            b.load(KNOB_VALUE, KNOB_ADDR, TABLE as i64);
        }
        // Memory density: store/load pairs on the private scratch region
        // (store first, so every load reads a defined word).
        for _ in 0..self.n_mem {
            b.alu_imm(AluOp::Add, KNOB_CURSOR, KNOB_CURSOR, 1);
            b.alu_imm(AluOp::And, KNOB_ADDR, KNOB_CURSOR, (SCRATCH_WORDS - 1) as i64);
            b.store(KNOB_STRIDE, KNOB_ADDR, SCRATCH as i64);
            b.load(KNOB_VALUE, KNOB_ADDR, SCRATCH as i64);
        }
        // Entropy branch: taken iff the next table word's low 32 bits fall
        // below the threshold, so P(taken) ≈ branch_entropy.
        if let Some(threshold) = self.taken_threshold {
            b.alu_imm(AluOp::Add, KNOB_CURSOR, KNOB_CURSOR, 1);
            b.alu_imm(AluOp::And, KNOB_ADDR, KNOB_CURSOR, (TABLE_WORDS - 1) as i64);
            b.load(KNOB_VALUE, KNOB_ADDR, TABLE as i64);
            b.alu_imm(AluOp::And, KNOB_VALUE, KNOB_VALUE, 0xFFFF_FFFF);
            b.load_imm(KNOB_THRESH, threshold as i64);
            let skip = b.label(format!("knob_skip_{}", self.next_label));
            self.next_label += 1;
            b.branch(Cond::Ltu, KNOB_VALUE, KNOB_THRESH, skip);
            b.alu_imm(AluOp::Or, KNOB_VALUE, KNOB_VALUE, 1);
            b.bind(skip);
        }
    }
}

/// One parameterized benchmark family: the legacy kernel plus its knob
/// block. [`families`] lists all nine.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadFamily {
    name: &'static str,
    description: &'static str,
    build: fn(&WorkloadParams, &Knobs) -> Program,
}

impl WorkloadFamily {
    /// The family's (SPEC benchmark) name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The legacy benchmark's description.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// Builds the program at one point of the family.
    pub fn program(&self, params: &WorkloadParams, knobs: &Knobs) -> Program {
        (self.build)(params, knobs)
    }
}

/// All nine families, in extended-suite order (the eight SPECint95
/// benchmarks plus `mgrid`).
pub fn families() -> Vec<WorkloadFamily> {
    vec![
        WorkloadFamily { name: "go", description: "Game playing.", build: go::build },
        WorkloadFamily {
            name: "m88ksim",
            description: "A simulator for the 88100 processor.",
            build: m88ksim::build,
        },
        WorkloadFamily {
            name: "gcc",
            description: "A GNU C compiler version 2.5.3.",
            build: gcc::build,
        },
        WorkloadFamily {
            name: "compress",
            description: "Data compression program using adaptive Lempel-Ziv coding.",
            build: compress::build,
        },
        WorkloadFamily { name: "li", description: "Lisp interpreter.", build: li::build },
        WorkloadFamily { name: "ijpeg", description: "JPEG encoder.", build: ijpeg::build },
        WorkloadFamily { name: "perl", description: "Anagram search program.", build: perl::build },
        WorkloadFamily {
            name: "vortex",
            description: "A single-user object-oriented database transaction benchmark.",
            build: vortex::build,
        },
        WorkloadFamily {
            name: "mgrid",
            description: "Multi-grid solver in 3D potential field (SPECfp95).",
            build: mgrid::build,
        },
    ]
}

/// Finds one family by name; `None` for an unknown name.
pub fn family_by_name(name: &str) -> Option<WorkloadFamily> {
    families().into_iter().find(|f| f.name == name)
}

/// One fully-specified program in workload space: a family plus its knob
/// coordinates and generation parameters. This triple (with a trace
/// length) is the fuzzing harness's replayable repro tuple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FamilyPoint {
    /// The family's name (always one of [`families`]).
    pub family: &'static str,
    /// Workload-space coordinates.
    pub knobs: Knobs,
    /// Data-generation parameters (seed, scale).
    pub params: WorkloadParams,
}

impl FamilyPoint {
    /// The legacy benchmark as a family point: all-zero knobs, default
    /// parameters. `None` for an unknown name.
    pub fn legacy(name: &str) -> Option<FamilyPoint> {
        family_by_name(name).map(|f| FamilyPoint {
            family: f.name,
            knobs: Knobs::default(),
            params: WorkloadParams::default(),
        })
    }

    /// Draws a uniformly random point: family uniform over the nine, every
    /// knob on a 1/64 grid (`did` in `0..=4`, the rest in `0..=1`), seed a
    /// full 64-bit draw. The grid keeps printed points exact: each
    /// coordinate's decimal rendering parses back to the same `f64`.
    pub fn sample(rng: &mut SplitMix64) -> FamilyPoint {
        let all = families();
        let family = all[rng.below(all.len() as u64) as usize].name;
        let grid = |rng: &mut SplitMix64, cells: u64| rng.below(cells + 1) as f64 / 64.0;
        let knobs = Knobs {
            did: grid(rng, 4 * 64),
            mix_constant: grid(rng, 64),
            mix_stride: grid(rng, 64),
            mix_periodic: grid(rng, 64),
            mix_random: grid(rng, 64),
            branch_entropy: grid(rng, 64),
            mem_density: grid(rng, 64),
        };
        let params = WorkloadParams { seed: rng.next_u64(), scale: 1 };
        FamilyPoint { family, knobs, params }
    }

    /// Builds the program at this point.
    ///
    /// # Panics
    ///
    /// Panics if `family` names no known family (impossible for points
    /// from [`FamilyPoint::legacy`] / [`FamilyPoint::sample`]).
    pub fn program(&self) -> Program {
        family_by_name(self.family)
            .unwrap_or_else(|| panic!("unknown family `{}`", self.family))
            .program(&self.params, &self.knobs)
    }
}

impl std::fmt::Display for FamilyPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} seed={:#x}", self.family, self.knobs, self.params.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_trace::trace_program;

    #[test]
    fn origin_knobs_change_nothing() {
        for family in families() {
            let params = WorkloadParams::default();
            let legacy = crate::by_name(family.name(), &params).unwrap();
            let at_origin = family.program(&params, &Knobs::default());
            assert_eq!(legacy.program(), &at_origin, "{}", family.name());
        }
    }

    #[test]
    fn every_knob_alone_still_sustains_a_trace() {
        let params = WorkloadParams::default();
        for family in families() {
            for key in ["did", "const", "stride", "periodic", "random", "bentropy", "mem"] {
                let mut knobs = Knobs::default();
                assert!(knobs.set(key, 0.75));
                let program = family.program(&params, &knobs);
                let trace = trace_program(&program, 5_000);
                assert_eq!(trace.len(), 5_000, "{} with {key}=0.75", family.name());
            }
        }
    }

    #[test]
    fn did_knob_grows_the_program() {
        let params = WorkloadParams::default();
        for family in families() {
            let base = family.program(&params, &Knobs::default()).len();
            let stretched = family.program(&params, &Knobs { did: 2.0, ..Knobs::default() }).len();
            assert!(stretched > base, "{}: {stretched} <= {base}", family.name());
        }
    }

    #[test]
    fn entropy_branch_is_taken_at_roughly_the_knob_rate() {
        let params = WorkloadParams::default();
        let family = family_by_name("m88ksim").unwrap();
        let mut taken_rates = Vec::new();
        for entropy in [0.25, 0.75] {
            let knobs = Knobs { branch_entropy: entropy, ..Knobs::default() };
            let program = family.program(&params, &knobs);
            let trace = trace_program(&program, 40_000);
            taken_rates.push(trace.stats().taken_control_rate());
        }
        assert!(
            taken_rates[1] > taken_rates[0],
            "higher entropy knob must take its branch more often: {taken_rates:?}"
        );
    }

    #[test]
    fn sampled_points_round_trip_through_display() {
        let mut rng = SplitMix64::new(0x1998);
        for _ in 0..64 {
            let point = FamilyPoint::sample(&mut rng);
            for (key, value) in point.knobs.fields() {
                let rendered = format!("{value}");
                let parsed: f64 = rendered.parse().unwrap();
                assert_eq!(parsed, value, "{key}={rendered}");
            }
        }
    }

    #[test]
    fn sampled_points_build_and_trace() {
        let mut rng = SplitMix64::new(7);
        for case in 0..24 {
            let point = FamilyPoint::sample(&mut rng);
            let trace = trace_program(&point.program(), 4_000);
            assert_eq!(trace.len(), 4_000, "case {case}: {point}");
        }
    }

    #[test]
    fn knob_set_rejects_unknown_keys() {
        let mut knobs = Knobs::default();
        assert!(!knobs.set("wat", 1.0));
        assert!(knobs.is_origin());
        assert!(knobs.set("mem", 0.5));
        assert!(!knobs.is_origin());
    }
}
