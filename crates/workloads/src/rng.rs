//! Deterministic pseudo-random data generation for workload inputs.

/// A SplitMix64 generator.
///
/// Used to synthesize workload input data (text, boards, permutations) so
/// that programs are bit-identical across runs and platforms — experiment
/// results must be exactly reproducible.
///
/// # Example
///
/// ```
/// use fetchvp_workloads::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.below(10) < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value uniform in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }

    /// A Fisher–Yates-shuffled permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n as u64).collect();
        for i in (1..n).rev() {
            let j = self.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        SplitMix64::new(0).below(0);
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut r = SplitMix64::new(9);
        let mut p = r.permutation(100);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut r = SplitMix64::new(11);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.below(8) as usize] += 1;
        }
        for b in buckets {
            assert!((700..1300).contains(&b), "bucket count {b} far from uniform");
        }
    }
}
