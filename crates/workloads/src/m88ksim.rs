//! `m88ksim` stand-in: the dispatch loop of a processor simulator.
//!
//! The paper singles out m88ksim (with vortex) as the benchmark whose value
//! prediction benefit grows most dramatically with fetch bandwidth: ~40% of
//! its dependencies are value-predictable with DID ≥ 4 (Figure 3.5), and its
//! ideal-machine speedup moves from 4% at fetch-4 to 112% at fetch-16
//! (Figure 3.1).
//!
//! The synthetic kernel models one simulated instruction per iteration of a
//! long (~38-instruction) dispatch loop: fetch the instruction word from a
//! simulated instruction memory, decode it through a small branch tree, and
//! update simulated architectural state. The loop's *critical path* is a
//! serial chain of bookkeeping accumulators (simulated cycle counters,
//! event statistics) whose steps are spread across the body — exactly the
//! strided, long-distance, perfectly-stride-predictable dependencies that
//! need high fetch bandwidth to exploit.

use fetchvp_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

use crate::family::{KnobBlock, Knobs};
use crate::rng::SplitMix64;
use crate::WorkloadParams;

const IMEM: u64 = 0x1_0000;
const SREGS: u64 = 0x2_0000;

pub(crate) fn build(params: &WorkloadParams, knobs: &Knobs) -> Program {
    let mut rng = SplitMix64::new(params.seed ^ 0x88100);
    let mut b = ProgramBuilder::new("m88ksim");
    let mut kb = KnobBlock::new(params, knobs, 1);
    kb.install_data(&mut b);

    // Simulated instruction memory: a cyclic synthetic program. (Word
    // addressing is dense: the simulated machine's memory is word-granular,
    // which keeps address arithmetic shallow.) The opcode bits follow a
    // short repeating pattern — real instruction streams are highly
    // structured, which is what makes the decode branches of the real
    // m88ksim predictable by a history-based BTB — while the payload bits
    // stay random.
    let n_iwords = 64 * params.scale as u64;
    let opcode_pattern = [3u64, 3, 1, 3, 2, 3, 1, 0];
    for i in 0..n_iwords {
        let payload = rng.next_u64() & !3;
        b.data_word(IMEM + i, payload | opcode_pattern[(i % 8) as usize]);
    }
    // Simulated register file.
    for i in 0..8 {
        b.data_word(SREGS + i, rng.next_u64());
    }

    // Register allocation.
    let sim_pc = Reg::R1; // simulated PC (strided)
    let cycle = Reg::R2; // simulated cycle counter (strided chain head)
    let icount = Reg::R3; // retired-instruction counter
    let stat_alu = Reg::R4; // per-class statistics
    let stat_mem = Reg::R5;
    let stat_ctl = Reg::R6;
    let chain = Reg::R7; // the serial bookkeeping chain (critical path)
    let iword = Reg::R8;
    let t0 = Reg::R9;
    let t1 = Reg::R10;
    let t2 = Reg::R11;
    let op = Reg::R12;
    let t3 = Reg::R13;

    // Per-cycle simulator statistics: every dispatch-loop iteration updates
    // these once, at positions spread across the body, producing the large
    // population of *predictable, long-distance* dependencies the paper
    // measures for m88ksim.
    let tick_a = Reg::R15;
    let tick_b = Reg::R16;
    let tick_c = Reg::R17;

    let head = b.bind_label("dispatch");
    kb.emit(&mut b);
    // -- chain step 1 + per-iteration counters (predictable, DID = body),
    //    interleaved with the (shallow) fetch slice so in-body dependencies
    //    also span several instructions --
    b.alu_imm(AluOp::Add, chain, chain, 3);
    b.alu_imm(AluOp::Add, cycle, cycle, 2);
    b.alu_imm(AluOp::And, t1, sim_pc, (n_iwords - 1) as i64);
    b.alu_imm(AluOp::Add, tick_a, tick_a, 4);
    b.layout_break();
    b.load(iword, t1, IMEM as i64); // unpredictable
    b.alu_imm(AluOp::Add, tick_b, tick_b, 6);
    b.alu_imm(AluOp::Add, chain, chain, 7); // chain step 2
    b.layout_break();
    // -- decode: a 4-way branch tree on the low opcode bits --
    b.alu_imm(AluOp::And, op, iword, 3);
    b.alu_imm(AluOp::Add, chain, chain, 13); // chain step 3
    b.alu_imm(AluOp::Add, tick_c, tick_c, 8);
    let case_mem = b.label("case_mem");
    let case_ctl = b.label("case_ctl");
    let case_nop = b.label("case_nop");
    let join = b.label("join");
    b.branch(Cond::Eq, op, Reg::R0, case_nop);
    b.alu_imm(AluOp::Sub, t3, op, 1);
    b.branch(Cond::Eq, t3, Reg::R0, case_mem);
    b.alu_imm(AluOp::Sub, t3, op, 2);
    b.branch(Cond::Eq, t3, Reg::R0, case_ctl);
    // case: ALU instruction — read a simulated register (indexed by the
    // simulated PC's low bits, a shallow predictable slice), combine with
    // the instruction word, write back.
    b.alu_imm(AluOp::Add, stat_alu, stat_alu, 1); // per-case counter
    b.alu_imm(AluOp::And, t2, t1, 7);
    b.load(t3, t2, SREGS as i64); // simulated source value (unpredictable)
    b.store(t3, t2, SREGS as i64); // write-back (the shallow path)
    b.alu(AluOp::Xor, Reg::R18, Reg::R18, t3); // result checksum, parallel
    b.jump(join);
    // case: memory instruction — effective-address arithmetic.
    b.bind(case_mem);
    b.alu_imm(AluOp::Add, stat_mem, stat_mem, 1);
    b.alu_imm(AluOp::Shr, t2, iword, 16);
    b.alu_imm(AluOp::And, t2, t2, 7);
    b.load(t3, t2, SREGS as i64);
    b.alu_imm(AluOp::Add, t3, t3, 8); // simulated pointer bump (strided!)
    b.store(t3, t2, SREGS as i64);
    b.jump(join);
    // case: control instruction — redirect the simulated PC.
    b.bind(case_ctl);
    b.alu_imm(AluOp::Add, stat_ctl, stat_ctl, 1);
    b.alu_imm(AluOp::Shr, t0, iword, 8);
    // A simulated jump redirects the simulated PC only when three bits
    // align (~12% of control instructions), so the simulated PC remains a
    // mostly-strided, highly predictable counter.
    b.alu_imm(AluOp::And, t0, t0, 7);
    let not_taken = b.label("sim_not_taken");
    b.branch(Cond::Ne, t0, Reg::R0, not_taken);
    b.alu_imm(AluOp::Add, sim_pc, sim_pc, 3); // simulated jump skips ahead
    b.bind(not_taken);
    b.jump(join);
    // case: nop. (Updates its own counter — the `chain` accumulator must
    // only ever advance by path-independent amounts to stay
    // stride-predictable.)
    b.bind(case_nop);
    b.alu_imm(AluOp::Add, Reg::R14, Reg::R14, 1);
    b.bind(join);
    // -- chain steps 3..5 and trailing bookkeeping --
    b.alu_imm(AluOp::Add, chain, chain, 11);
    b.layout_break();
    b.alu_imm(AluOp::Add, icount, icount, 1);
    b.alu_imm(AluOp::Add, chain, chain, 5);
    b.alu_imm(AluOp::Add, sim_pc, sim_pc, 1);
    b.layout_break();
    b.alu_imm(AluOp::Add, chain, chain, 9);
    b.jump(head);

    b.build().expect("m88ksim workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_trace::trace_program;

    #[test]
    fn sustains_long_traces() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        assert_eq!(trace_program(&p, 20_000).len(), 20_000);
    }

    #[test]
    fn exercises_all_decode_cases() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        let t = trace_program(&p, 20_000);
        // All three per-case statistic counters must have been updated:
        // their PCs appear in the trace.
        let pcs: std::collections::HashSet<u64> = t.iter().map(|r| r.pc).collect();
        let coverage = pcs.len() as f64 / p.len() as f64;
        assert!(coverage > 0.9, "only {:.0}% of the program was reached", coverage * 100.0);
    }

    #[test]
    fn simulated_state_is_deterministic() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        let a = trace_program(&p, 5_000);
        let b = trace_program(&p, 5_000);
        assert_eq!(a, b);
    }
}
