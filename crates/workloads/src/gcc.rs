//! `gcc` stand-in: a compiler pass over pointer-linked IR nodes.
//!
//! The paper reports moderate value-prediction gains for gcc (2%, 14%, 32%
//! and 34% at fetch rates 8, 16, 32 and 40 — Figure 3.1): part of its
//! critical path is stride-predictable bookkeeping, but a pointer-chasing
//! component remains unpredictable, so the speedup plateaus once the
//! predictable chains are gone.
//!
//! The synthetic kernel walks a *permuted* circular linked list of IR
//! nodes (pointer loads are therefore not stride-predictable), dispatches
//! on each node's kind through a branch tree, and maintains predictable
//! pass statistics alongside.

use fetchvp_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

use crate::family::{KnobBlock, Knobs};
use crate::rng::SplitMix64;
use crate::WorkloadParams;

const NODES: u64 = 0x30_0000;
const HANDLES: u64 = 0x38_0000;
const NODE_SIZE: u64 = 4; // kind, payload, handle pointer (word-granular)

pub(crate) fn build(params: &WorkloadParams, knobs: &Knobs) -> Program {
    let mut rng = SplitMix64::new(params.seed ^ 0x6CC);
    let mut b = ProgramBuilder::new("gcc");
    let mut kb = KnobBlock::new(params, knobs, 2);
    kb.install_data(&mut b);

    // Build a circular linked list threaded through a random permutation of
    // the node array, with one level of *handle* indirection (as in a
    // compiler's symbol-table references): node -> handle -> next node.
    // Successive `next` pointers are not strided, and the chase is two
    // dependent loads deep.
    let n_nodes = (256 * params.scale as usize).max(16);
    let perm = rng.permutation(n_nodes);
    // Handle slots are themselves permuted so that neither the handle
    // pointers nor the node pointers form an arithmetic sequence.
    let handle_perm = rng.permutation(n_nodes);
    for i in 0..n_nodes {
        let addr = NODES + perm[i] * NODE_SIZE;
        let next = NODES + perm[(i + 1) % n_nodes] * NODE_SIZE;
        let handle = HANDLES + handle_perm[i];
        // Node kinds follow a short repeating pattern along the walk
        // order (real IR is highly structured: expression trees interleave
        // leaves and operators in stereotyped shapes), so the dispatch
        // branches are learnable by a history-based BTB at realistic
        // accuracy — with an occasional random node breaking the pattern.
        let kind_pattern = [0u64, 0, 1, 0, 2, 0, 1, 3];
        let kind = if rng.below(8) == 0 { rng.below(4) } else { kind_pattern[i % 8] };
        b.data_word(addr, kind); // kind
        b.data_word(addr + 1, rng.next_u64()); // payload
        b.data_word(addr + 2, handle); // handle pointer
        b.data_word(handle, next); // handle -> next node
    }

    let node = Reg::R1; // current node pointer (pointer-chased)
    let visited = Reg::R2; // pass statistics (strided)
    let folded = Reg::R3;
    let chain = Reg::R4; // pass bookkeeping chain
    let kind = Reg::R8;
    let t0 = Reg::R9;
    let t1 = Reg::R10;
    let t2 = Reg::R11;
    let handle = Reg::R12;

    b.load_imm(node, (NODES + perm[0] * NODE_SIZE) as i64);

    let head = b.bind_label("walk");
    kb.emit(&mut b);
    // -- predictable pass bookkeeping --
    b.alu_imm(AluOp::Add, chain, chain, 2);
    b.alu_imm(AluOp::Add, visited, visited, 1);
    // -- inspect the node --
    b.load(kind, node, 0); // kind in 0..4 (data-dependent)
    b.load(t0, node, 1); // payload (unpredictable)
    b.load(handle, node, 2); // symbol handle (starts the chase early)
    b.layout_break();
    b.alu_imm(AluOp::Add, chain, chain, 4);
    let k_fold = b.label("k_fold");
    let k_move = b.label("k_move");
    let join = b.label("join");
    b.branch(Cond::Eq, kind, Reg::R0, join); // kind 0: leaf, nothing to do
    b.alu_imm(AluOp::Sub, t1, kind, 1);
    b.branch(Cond::Eq, t1, Reg::R0, k_fold);
    b.alu_imm(AluOp::Sub, t1, kind, 2);
    b.branch(Cond::Eq, t1, Reg::R0, k_move);
    // kind 3: strength-reduce — rewrite the payload.
    b.alu_imm(AluOp::Shl, t2, t0, 1);
    b.store(t2, node, 1);
    b.jump(join);
    // kind 1: constant-fold — data-dependent test on the payload.
    b.bind(k_fold);
    b.alu_imm(AluOp::And, t2, t0, 7);
    let no_fold = b.label("no_fold");
    b.branch(Cond::Ne, t2, Reg::R0, no_fold);
    b.alu_imm(AluOp::Add, folded, folded, 1);
    b.bind(no_fold);
    b.jump(join);
    // kind 2: move — mix the payload into a running signature.
    b.bind(k_move);
    b.alu_imm(AluOp::Shr, t2, t0, 17);
    b.alu(AluOp::Xor, t2, t2, t0);
    b.store(t2, node, 1);
    b.jump(join);
    b.bind(join);
    // -- advance: the two-load pointer chase with tag clearing (the
    //    unpredictable, value-prediction-proof backbone) --
    b.alu_imm(AluOp::Add, chain, chain, 8);
    b.load(node, handle, 0);
    b.layout_break();
    b.alu_imm(AluOp::And, node, node, !3i64);
    b.alu_imm(AluOp::Add, chain, chain, 16);
    b.jump(head);

    b.build().expect("gcc workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchvp_trace::trace_program;

    #[test]
    fn sustains_long_traces() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        assert_eq!(trace_program(&p, 20_000).len(), 20_000);
    }

    #[test]
    fn walks_every_node() {
        let p = build(&WorkloadParams { seed: 3, scale: 1 }, &Knobs::default());
        let t = trace_program(&p, 50_000);
        // The chase load reads from the handle table; it must visit many
        // distinct handles (the permutation cycle).
        let ptrs: std::collections::HashSet<u64> = t
            .iter()
            .filter(|r| r.instr.is_mem() && r.mem_addr.is_some_and(|a| a >= HANDLES))
            .map(|r| r.mem_addr.unwrap())
            .collect();
        assert!(ptrs.len() >= 256, "only {} distinct handles", ptrs.len());
    }

    #[test]
    fn next_pointers_are_not_strided() {
        let p = build(&WorkloadParams::default(), &Knobs::default());
        let t = trace_program(&p, 30_000);
        let nexts: Vec<u64> = t
            .iter()
            .filter(|r| {
                r.instr.is_mem() && r.dst().is_some() && r.mem_addr.is_some_and(|a| a >= HANDLES)
            })
            .map(|r| r.result)
            .collect();
        assert!(nexts.len() > 100);
        let mut same_delta = 0usize;
        for w in nexts.windows(3) {
            if w[2].wrapping_sub(w[1]) == w[1].wrapping_sub(w[0]) {
                same_delta += 1;
            }
        }
        assert!(
            (same_delta as f64) < nexts.len() as f64 * 0.2,
            "pointer chase looks strided: {same_delta}/{}",
            nexts.len()
        );
    }
}
