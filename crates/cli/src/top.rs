//! `fetchvp top` — a terminal dashboard over `GET /fleet/metrics`.
//!
//! One request per refresh: the target member fans the scrape out to its
//! peers and returns the merged snapshot (see `fetchvp-server`), so the
//! dashboard sees every member — including dead ones, which the merge
//! marks `down` — without knowing the fleet topology itself. Rendering
//! is a pure function of the merged document ([`render`]), which is what
//! the snapshot test pins; the fetch/clear/sleep loop around it is the
//! only impure part.
//!
//! Per member: request rate (served requests over uptime), job-queue
//! depth, result-cache hit rate and request-latency quantiles. Below
//! the member table, every live (non-terminal) job in the fleet with a
//! progress bar fed by the same totals that `GET /jobs/<id>/events`
//! streams.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use fetchvp_metrics::Json;

/// ANSI: clear the screen and home the cursor — the redraw between
/// refreshes.
const CLEAR: &str = "\x1b[2J\x1b[H";

/// How one `fetchvp top` invocation behaves.
pub struct TopOptions {
    /// The member to scrape (any member answers for the whole fleet).
    pub addr: String,
    /// Delay between refreshes.
    pub interval: Duration,
    /// Refresh count; `None` runs until interrupted.
    pub count: Option<u64>,
}

impl Default for TopOptions {
    fn default() -> TopOptions {
        TopOptions {
            addr: "127.0.0.1:7998".to_string(),
            interval: Duration::from_secs(2),
            count: None,
        }
    }
}

/// One blocking `GET /fleet/metrics` against `addr`, parsed.
fn fetch(addr: &str) -> Result<Json, String> {
    let target = addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve `{addr}`: {e}"))?
        .next()
        .ok_or_else(|| format!("cannot resolve `{addr}`"))?;
    let mut stream = TcpStream::connect_timeout(&target, Duration::from_secs(2))
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(5))).ok();
    let head = format!("GET /fleet/metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(head.as_bytes()).map_err(|e| format!("write to {addr} failed: {e}"))?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| format!("read from {addr} failed: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) =
        text.split_once("\r\n\r\n").ok_or_else(|| format!("{addr}: malformed response"))?;
    let status =
        head.strip_prefix("HTTP/1.1 ").and_then(|rest| rest.split(' ').next()).unwrap_or("<none>");
    if status != "200" {
        return Err(format!("{addr}: /fleet/metrics answered {status}"));
    }
    Json::parse(body).map_err(|e| format!("{addr}: bad fleet snapshot: {e}"))
}

/// Sum of every counter under `prefix.` in a member document (e.g.
/// `server.requests` counts every endpoint/status cell).
fn counter_sum(member: &Json, prefix: &str) -> u64 {
    let Some(pairs) = member.get_path("metrics.counters").and_then(Json::as_object) else {
        return 0;
    };
    let dotted = format!("{prefix}.");
    pairs
        .iter()
        .filter(|(key, _)| key.starts_with(&dotted))
        .filter_map(|(_, value)| value.as_u64())
        .sum()
}

/// A named gauge from a member document.
fn gauge(member: &Json, key: &str) -> Option<f64> {
    member.get_path("metrics.gauges").and_then(|g| g.get(key)).and_then(Json::as_f64)
}

/// A request-latency quantile (`p50`/`p95`/`p99`) from a member
/// document, rendered as text (`-` when the member never served).
fn latency(member: &Json, quantile: &str) -> String {
    member
        .get_path("metrics.histograms")
        .and_then(|h| h.get("server.request_latency_us"))
        .and_then(|h| h.get(quantile))
        .and_then(Json::as_u64)
        .map(|v| v.to_string())
        .unwrap_or_else(|| "-".to_string())
}

/// A 20-cell progress bar for an integer percentage.
fn bar(percent: u64) -> String {
    let filled = (percent.min(100) / 5) as usize;
    format!("[{}{}]", "#".repeat(filled), "-".repeat(20 - filled))
}

/// One member's table row.
fn member_row(addr: &str, member: &Json) -> String {
    let status = member.get("status").and_then(Json::as_str).unwrap_or("?");
    if status == "down" {
        return format!(
            "{addr:<22} {status:<5} {:>7} {:>8} {:>6} {:>5} {:>7} {:>7} {:>7}",
            "-", "-", "-", "-", "-", "-", "-"
        );
    }
    let uptime = member.get("uptime_seconds").and_then(Json::as_u64).unwrap_or(0);
    let served = counter_sum(member, "server.requests");
    let rps = if uptime > 0 { served as f64 / uptime as f64 } else { 0.0 };
    let queue = gauge(member, "server.queue.depth").map(|d| d as u64).unwrap_or(0);
    let hit = {
        let hits = gauge(member, "server.result_cache.hits").unwrap_or(0.0)
            + gauge(member, "server.result_cache.disk_hits").unwrap_or(0.0);
        let misses = gauge(member, "server.result_cache.misses").unwrap_or(0.0);
        if hits + misses > 0.0 {
            format!("{:.0}", 100.0 * hits / (hits + misses))
        } else {
            "-".to_string()
        }
    };
    format!(
        "{addr:<22} {status:<5} {uptime:>6}s {rps:>8.1} {queue:>6} {hit:>5} {:>7} {:>7} {:>7}",
        latency(member, "p50"),
        latency(member, "p95"),
        latency(member, "p99"),
    )
}

/// One live job's line under the member table.
fn job_row(addr: &str, job: &Json) -> String {
    let id = job.get("job").and_then(Json::as_u64).unwrap_or(0);
    let status = job.get("status").and_then(Json::as_str).unwrap_or("?");
    let progress = job.get("progress");
    let phase = progress.and_then(|p| p.get("phase")).and_then(Json::as_str).unwrap_or(status);
    let percent = progress.and_then(|p| p.get("percent")).and_then(Json::as_u64).unwrap_or(0);
    let done =
        progress.and_then(|p| p.get("instructions_done")).and_then(Json::as_u64).unwrap_or(0);
    let total =
        progress.and_then(|p| p.get("instructions_total")).and_then(Json::as_u64).unwrap_or(0);
    let cells_done = progress.and_then(|p| p.get("cells_done")).and_then(Json::as_u64).unwrap_or(0);
    let cells_total =
        progress.and_then(|p| p.get("cells_total")).and_then(Json::as_u64).unwrap_or(0);
    format!(
        "  {addr} job {id} {phase:<8} {percent:>3}% {} {done}/{total} instr, \
         cells {cells_done}/{cells_total}",
        bar(percent)
    )
}

/// Renders one merged `/fleet/metrics` document as the dashboard text.
/// Pure and deterministic — the snapshot test feeds a fixed document and
/// pins the exact output.
pub fn render(doc: &Json) -> String {
    let fleet_size = doc.get("fleet_size").and_then(Json::as_u64).unwrap_or(0);
    let reporting = doc.get("reporting").and_then(Json::as_u64).unwrap_or(0);
    let mut out = format!("fetchvp top — {reporting}/{fleet_size} member(s) reporting\n");
    out.push_str(&format!(
        "{:<22} {:<5} {:>7} {:>8} {:>6} {:>5} {:>7} {:>7} {:>7}\n",
        "MEMBER", "STATE", "UPTIME", "RPS", "QUEUE", "HIT%", "P50", "P95", "P99"
    ));
    let members = doc.get("members").and_then(Json::as_object);
    let mut jobs = Vec::new();
    if let Some(members) = members {
        for (addr, member) in members {
            out.push_str(&member_row(addr, member));
            out.push('\n');
            if let Some(Json::Array(live)) = member.get("live_jobs") {
                for job in live {
                    jobs.push(job_row(addr, job));
                }
            }
        }
    }
    out.push_str("\nlive jobs:\n");
    if jobs.is_empty() {
        out.push_str("  (none)\n");
    } else {
        for line in jobs {
            out.push_str(&line);
            out.push('\n');
        }
    }
    let requests = doc
        .get_path("summed.counters")
        .and_then(Json::as_object)
        .map(|pairs| {
            pairs
                .iter()
                .filter(|(key, _)| key.starts_with("server.requests."))
                .filter_map(|(_, v)| v.as_u64())
                .sum::<u64>()
        })
        .unwrap_or(0);
    let completed = doc
        .get_path("summed.counters")
        .and_then(|c| c.get("server.jobs.completed"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    out.push_str(&format!(
        "\nfleet totals: {requests} request(s) served, {completed} job(s) completed\n"
    ));
    out
}

/// The fetch/render/sleep loop behind the `top` subcommand.
///
/// # Errors
///
/// Errors when the very first scrape fails (a bad address should fail
/// fast); later scrape failures draw an error frame and keep going, the
/// way an operator expects a dashboard to ride out a restart.
pub fn run(opts: &TopOptions) -> Result<(), String> {
    let mut frame = 0u64;
    loop {
        match fetch(&opts.addr) {
            Ok(doc) => {
                print!("{CLEAR}{}", render(&doc));
                let _ = std::io::stdout().flush();
            }
            Err(e) if frame == 0 => return Err(e),
            Err(e) => {
                println!("{CLEAR}fetchvp top — scrape of {} failed: {e}", opts.addr);
                let _ = std::io::stdout().flush();
            }
        }
        frame += 1;
        if opts.count.is_some_and(|count| frame >= count) {
            return Ok(());
        }
        std::thread::sleep(opts.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed two-member merged snapshot: one self member with a live
    /// job and traffic, one dead member.
    fn fixed_doc() -> Json {
        Json::parse(
            r#"{
              "fleet_size": 2,
              "reporting": 1,
              "members": {
                "127.0.0.1:7001": {
                  "status": "self",
                  "addr": "127.0.0.1:7001",
                  "version": "0.1.0",
                  "uptime_seconds": 120,
                  "live_jobs": [
                    {
                      "job": 12,
                      "status": "running",
                      "progress": {
                        "phase": "running",
                        "instructions_done": 10400000,
                        "instructions_total": 20000000,
                        "percent": 52,
                        "cells_done": 1,
                        "cells_total": 2
                      }
                    }
                  ],
                  "metrics": {
                    "counters": {
                      "server.requests.run.202": 4800,
                      "server.requests.jobs.200": 240,
                      "server.jobs.completed": 4700
                    },
                    "gauges": {
                      "server.queue.depth": 3,
                      "server.result_cache.hits": 4000,
                      "server.result_cache.disk_hits": 250,
                      "server.result_cache.misses": 750
                    },
                    "histograms": {
                      "server.request_latency_us": {
                        "count": 5040, "sum": 1000000,
                        "p50": 180, "p95": 420, "p99": 900
                      }
                    }
                  }
                },
                "127.0.0.1:7002": {
                  "status": "down"
                }
              },
              "summed": {
                "counters": {
                  "server.requests.run.202": 4800,
                  "server.requests.jobs.200": 240,
                  "server.jobs.completed": 4700
                }
              }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn render_snapshot_is_pinned() {
        let expected = "\
fetchvp top — 1/2 member(s) reporting
MEMBER                 STATE  UPTIME      RPS  QUEUE  HIT%     P50     P95     P99
127.0.0.1:7001         self     120s     42.0      3    85     180     420     900
127.0.0.1:7002         down        -        -      -     -       -       -       -

live jobs:
  127.0.0.1:7001 job 12 running   52% [##########----------] 10400000/20000000 instr, cells 1/2

fleet totals: 5040 request(s) served, 4700 job(s) completed
";
        assert_eq!(render(&fixed_doc()), expected);
    }

    #[test]
    fn render_survives_an_empty_or_alien_document() {
        let empty = Json::parse("{}").unwrap();
        let text = render(&empty);
        assert!(text.contains("0/0 member(s) reporting"));
        assert!(text.contains("(none)"));
        assert!(text.contains("0 request(s) served"));
    }

    #[test]
    fn bars_fill_proportionally_and_clamp() {
        assert_eq!(bar(0), "[--------------------]");
        assert_eq!(bar(50), "[##########----------]");
        assert_eq!(bar(100), "[####################]");
        assert_eq!(bar(900), "[####################]");
    }

    #[test]
    fn members_without_traffic_render_dashes() {
        let doc = Json::parse(
            r#"{"fleet_size": 1, "reporting": 1, "members": {
                 "127.0.0.1:9": {"status": "self", "uptime_seconds": 0,
                                  "live_jobs": [], "metrics": {}}},
                 "summed": {"counters": {}}}"#,
        )
        .unwrap();
        let text = render(&doc);
        assert!(text.contains("127.0.0.1:9"), "{text}");
        assert!(text.contains(" 0.0"), "no traffic -> zero rps:\n{text}");
        assert!(text.split('\n').nth(2).unwrap().contains(" - "), "dash quantiles:\n{text}");
    }
}
