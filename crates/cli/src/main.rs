//! `fetchvp` — command-line driver for the paper's experiments.
//!
//! ```text
//! fetchvp <experiment> [--trace-len N] [--seed S] [--jobs N] [--csv] [--chart]
//!
//! experiments:
//!   table3-1   benchmark suite and trace characteristics
//!   accuracy   per-benchmark predictor coverage/accuracy
//!   breakdown  retire-slot attribution (event machine)
//!   fig3-1     ideal-machine VP speedup vs fetch rate
//!   table3-2   pipeline walk-through of the Figure 3.2 example
//!   fig3-3     average dynamic instruction distance
//!   fig3-4     DID distribution histograms
//!   fig3-5     predictability x DID distribution
//!   fig5-1     realistic machine, ideal BTB, taken-branch sweep
//!   fig5-2     realistic machine, 2-level BTB, taken-branch sweep
//!   fig5-3     realistic machine with trace cache
//!   usefulness correct predictions useful vs useless, fetch-4 vs fetch-40
//!   all        everything above, in paper order
//!
//! ablations (beyond the paper):
//!   ablation-banks        prediction-table bank sweep
//!   ablation-window       instruction-window sweep
//!   ablation-confidence   classification-threshold sweep
//!   ablation-predictors   last-value / stride / 2-delta / hybrid
//!   ablation-partial      trace-cache partial matching
//!   ablation-btb          branch-predictor quality sweep
//!   ablation-fetch        fetch-mechanism comparison (conventional/BAC/TC)
//!   ablation-penalty      branch/value misprediction penalty grid
//!   ablation-tc           trace-cache geometry sweep
//!   ablation-hints        dynamic vs profiling-based hybrid classification
//!   ablation-model        relaxing the ideal-model assumptions
//!   ablation-seeds        seed stability of the Figure 3.1 averages
//!   ablations             all of the above
//!
//! trace files (the Shade workflow):
//!   save-trace <benchmark> <file>   capture a trace to disk (chunked FVPS format,
//!                                   streamed — works at the paper's 100M scale)
//!   trace-gen <benchmark>           populate the content-addressed trace cache
//!                                   (--trace-dir DIR or $FETCHVP_TRACE_DIR;
//!                                   --out FILE streams to a plain file instead)
//!   trace-info <file>               print a saved trace's statistics (streams
//!                                   chunked stores; legacy FVPT still readable)
//!   run-asm <file.s>                assemble, trace and simulate a program
//!
//! out-of-core runs: every experiment accepts --trace-dir DIR (default
//! $FETCHVP_TRACE_DIR); machine sweeps (bench, fig3-1, fig5-1/2/3,
//! usefulness) then replay chunk-by-chunk from the cache and may exceed
//! the in-memory --trace-len limit, up to 100M instructions.
//!
//! observability:
//!   trace-viz <workload> [--cycles A..B] [--out FILE]
//!                                   export a cycle-accurate pipeline witness as
//!                                   Chrome trace-event JSON (Perfetto-loadable)
//!
//! benchmarking (the perf-regression loop):
//!   bench [--quick] [--repeat N] [--out FILE]
//!                                   run the workload suite (best-of-N cell timing),
//!                                   write BENCH_<date>.json
//!   bench-compare <old> <new> [--threshold PCT]
//!                                   diff two reports, exit nonzero on regression
//!   profile                         per-phase wall-time breakdown
//!                                   (trace generation / fetch / predict / schedule)
//!
//! serving (simulation as a service):
//!   serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!         [--result-cache N] [--peers HOST:PORT,...]
//!                                   run the HTTP daemon (see fetchvp-server);
//!                                   --peers lists every fleet member (this
//!                                   process's --addr must appear in it) and
//!                                   shards jobs across them by spec hash
//!   loadgen [--addr HOST:PORT,...] [--rps N] [--duration SECONDS]
//!           [--spec-mix FILE] [--out FILE]
//!                                   open-loop load generator: offered-rate
//!                                   POST /run traffic, reports achieved RPS
//!                                   and p50/p95/p99 latency overall and per
//!                                   response class (2xx / 503 / proxied)
//!   top [--addr HOST:PORT] [--interval SECONDS] [--count N]
//!                                   live fleet dashboard over GET
//!                                   /fleet/metrics: per-member RPS, queue
//!                                   depth, cache hit rate, latency
//!                                   quantiles and running-job progress
//!                                   bars; any member answers for the fleet
//!
//! fuzzing (the standing invariant gate):
//!   fuzz [--cases N] [--seed S] [--max-len N] [--out FILE]
//!                                   differentially fuzz sampled workload-family
//!                                   points across the machine set; nonzero exit
//!                                   on any invariant violation, each printed as
//!                                   a replayable repro tuple
//!   fuzz --replay "TUPLE"           re-check one printed repro tuple
//!   atlas [family] [--trace-len N]  sweep a coarse knob grid and map where the
//!                                   fetch-bandwidth effect is largest
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use std::sync::Arc;

mod top;

use fetchvp_core::{IdealConfig, IdealMachine, VpConfig};
use fetchvp_experiments::{
    ablations, atlas, bench, default_jobs, fig3_1, fig3_3, fig3_4, fig3_5, fig5_1, fig5_2, fig5_3,
    fuzz, jobspec, table3_1, table3_2, ExperimentConfig, Sweep, Table, MAX_IN_MEMORY_TRACE_LEN,
};
use fetchvp_isa::parse_program;
use fetchvp_metrics::Json;
use fetchvp_trace::{read_trace, trace_program};
use fetchvp_tracestore::{
    stream_program_to_store, stream_store_stats, TraceDir, TraceKey, TraceStore, DEFAULT_CHUNK_LEN,
    MAGIC,
};
use fetchvp_workloads::{by_name, WorkloadParams};

const USAGE: &str =
    "usage: fetchvp <experiment> [--trace-len N] [--seed S] [--jobs N] [--csv] [--chart]
                   [--trace-dir DIR]
experiments: table3-1 fig3-1 table3-2 fig3-3 fig3-4 fig3-5 fig5-1 fig5-2
             fig5-3 accuracy breakdown usefulness all
ablations:   ablation-banks ablation-window ablation-confidence \
             ablation-predictors ablation-partial ablation-btb \
             ablation-fetch ablation-penalty ablation-tc ablation-hints
             ablation-model ablation-seeds ablations
trace files: save-trace <benchmark> <file> / trace-gen <benchmark> \
             [--trace-dir DIR | --out FILE] / trace-info <file> / run-asm <file.s>
tracing:     trace-viz <workload> [--cycles A..B] [--out FILE]
benchmarks:  bench [--quick] [--repeat N] [--out FILE] / bench-compare \
             <old.json> <new.json> [--threshold PCT] / profile
serving:     serve [--addr HOST:PORT] [--workers N] [--queue-depth N] [--trace-dir DIR]
             [--result-cache N] [--peers HOST:PORT,...] / loadgen \
             [--addr HOST:PORT,...] [--rps N] [--duration SECONDS] [--spec-mix FILE]
             top [--addr HOST:PORT] [--interval SECONDS] [--count N]
fuzzing:     fuzz [--cases N] [--seed S] [--max-len N] [--replay TUPLE] [--out FILE]
             atlas [family] [--trace-len N]
other:       --version";

/// Every subcommand, for `did you mean …` suggestions on typos.
const COMMANDS: &[&str] = &[
    "table3-1",
    "accuracy",
    "breakdown",
    "fig3-1",
    "table3-2",
    "fig3-3",
    "fig3-4",
    "fig3-5",
    "fig5-1",
    "fig5-2",
    "fig5-3",
    "all",
    "ablation-banks",
    "ablation-window",
    "ablation-confidence",
    "ablation-predictors",
    "ablation-partial",
    "ablation-btb",
    "ablation-fetch",
    "ablation-penalty",
    "ablation-tc",
    "ablation-hints",
    "ablation-model",
    "ablation-seeds",
    "ablations",
    "usefulness",
    "save-trace",
    "trace-gen",
    "trace-info",
    "run-asm",
    "trace-viz",
    "bench",
    "bench-compare",
    "profile",
    "serve",
    "loadgen",
    "top",
    "fuzz",
    "atlas",
];

/// Every flag the parser understands, for used-flag tracking.
const KNOWN_FLAGS: &[&str] = &[
    "--trace-len",
    "--seed",
    "--jobs",
    "--csv",
    "--chart",
    "--quick",
    "--out",
    "--repeat",
    "--threshold",
    "--cycles",
    "--addr",
    "--workers",
    "--queue-depth",
    "--cases",
    "--max-len",
    "--replay",
    "--trace-dir",
    "--result-cache",
    "--peers",
    "--rps",
    "--duration",
    "--spec-mix",
    "--interval",
    "--count",
];

/// Flags shared by every figure/table/ablation experiment runner.
const EXPERIMENT_FLAGS: &[&str] =
    &["--trace-len", "--seed", "--jobs", "--csv", "--chart", "--trace-dir"];

/// What one subcommand accepts: its flags and its positional-argument cap.
struct CommandSpec {
    flags: &'static [&'static str],
    positionals: usize,
}

/// The accepted surface of each known subcommand. `None` for unknown
/// subcommands (those take the did-you-mean path in [`run_one`]).
fn command_spec(name: &str) -> Option<CommandSpec> {
    let spec = |flags, positionals| Some(CommandSpec { flags, positionals });
    match name {
        "save-trace" => spec(&["--trace-len", "--seed"], 2),
        "trace-gen" => spec(&["--trace-len", "--seed", "--trace-dir", "--out"], 1),
        "trace-info" => spec(&[], 1),
        "run-asm" => spec(&["--trace-len", "--seed"], 1),
        "trace-viz" => spec(&["--trace-len", "--seed", "--jobs", "--cycles", "--out"], 1),
        "bench" => spec(
            &["--trace-len", "--seed", "--jobs", "--quick", "--repeat", "--out", "--trace-dir"],
            0,
        ),
        "bench-compare" => spec(&["--threshold"], 2),
        "profile" => spec(&["--trace-len", "--seed", "--csv"], 0),
        "serve" => spec(
            &["--addr", "--workers", "--queue-depth", "--trace-dir", "--result-cache", "--peers"],
            0,
        ),
        "loadgen" => spec(&["--addr", "--rps", "--duration", "--spec-mix", "--out"], 0),
        "top" => spec(&["--addr", "--interval", "--count"], 0),
        "fuzz" => spec(&["--cases", "--seed", "--max-len", "--replay", "--out"], 0),
        "atlas" => spec(&["--trace-len", "--seed", "--csv"], 1),
        name if COMMANDS.contains(&name) => spec(EXPERIMENT_FLAGS, 0),
        _ => None,
    }
}

/// Rejects flags and stray positionals a known subcommand does not take
/// (unknown subcommands are reported with suggestions by [`run_one`]).
fn validate_invocation(opts: &Options) -> Result<(), String> {
    let Some(spec) = command_spec(&opts.experiment) else { return Ok(()) };
    for flag in &opts.used_flags {
        if !spec.flags.contains(flag) {
            let suggestion = spec
                .flags
                .iter()
                .map(|&known| (edit_distance(flag, known), known))
                .min()
                .filter(|&(distance, _)| distance <= 3)
                .map(|(_, known)| format!(" (did you mean `{known}`?)"))
                .unwrap_or_default();
            return Err(format!(
                "`{}` does not take the flag `{flag}`{suggestion}",
                opts.experiment
            ));
        }
    }
    if opts.positionals.len() > spec.positionals {
        return Err(format!(
            "`{}` takes at most {} positional argument(s), got {} (first extra: `{}`)",
            opts.experiment,
            spec.positionals,
            opts.positionals.len(),
            opts.positionals[spec.positionals]
        ));
    }
    Ok(())
}

/// Enforces the in-memory/out-of-core trace-length boundary before any
/// generation starts, distinguishing "too big for memory" (with the fix
/// named) from a plainly invalid value.
fn validate_scale(opts: &Options) -> Result<(), String> {
    let n = opts.config.trace_len;
    if n <= MAX_IN_MEMORY_TRACE_LEN {
        return Ok(());
    }
    if n > jobspec::MAX_TRACE_LEN_OOC {
        return Err(format!(
            "--trace-len {n} exceeds even the out-of-core cap of {} instructions",
            jobspec::MAX_TRACE_LEN_OOC
        ));
    }
    // save-trace and trace-gen stream straight to disk at any size.
    if matches!(opts.experiment.as_str(), "save-trace" | "trace-gen") {
        return Ok(());
    }
    if !jobspec::supports_out_of_core(&opts.experiment) {
        return Err(format!(
            "--trace-len {n} exceeds the in-memory limit of {MAX_IN_MEMORY_TRACE_LEN} \
             instructions, and `{}` cannot replay out-of-core (machine sweeps can: bench, \
             fig3-1, fig5-1, fig5-2, fig5-3, usefulness; save-trace and trace-gen always \
             stream)",
            opts.experiment
        ));
    }
    if opts.resolved_trace_dir().is_none() {
        return Err(format!(
            "--trace-len {n} exceeds the in-memory limit of {MAX_IN_MEMORY_TRACE_LEN} \
             instructions; out-of-core replay needs a trace directory: pass --trace-dir DIR \
             (or set FETCHVP_TRACE_DIR)"
        ));
    }
    Ok(())
}

/// Levenshtein edit distance — small inputs only (command names).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = if ca == cb { 0 } else { 1 };
            let next = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[b.len()]
}

/// The closest known subcommand within 3 edits, if any.
fn nearest_command(name: &str) -> Option<&'static str> {
    COMMANDS
        .iter()
        .map(|&cmd| (edit_distance(name, cmd), cmd))
        .min()
        .filter(|&(distance, _)| distance <= 3)
        .map(|(_, cmd)| cmd)
}

struct Options {
    experiment: String,
    /// Extra positional arguments (benchmark name, file paths).
    positionals: Vec<String>,
    config: ExperimentConfig,
    /// Worker threads for the figure sweeps (default: one per logical CPU;
    /// `--jobs 1` forces the serial path).
    jobs: usize,
    csv: bool,
    chart: bool,
    /// `bench`: use the reduced quick configuration.
    quick: bool,
    /// `bench`: output path (default `BENCH_<date>.json`).
    out: Option<String>,
    /// `bench`: timing repetitions per cell (best wall time kept).
    repeat: usize,
    /// `bench-compare`: tolerated throughput drop, percent.
    threshold: f64,
    /// `trace-viz`: restrict the export to events overlapping this
    /// inclusive cycle window.
    cycles: Option<(u64, u64)>,
    /// `serve`: listen address.
    addr: Option<String>,
    /// `serve`: pool worker threads.
    workers: Option<usize>,
    /// `serve`: bounded job-queue capacity.
    queue_depth: Option<usize>,
    /// `serve`: result-cache capacity in entries (0 disables).
    result_cache: Option<usize>,
    /// `serve`: the full fleet membership list, comma-separated.
    peers: Option<String>,
    /// `loadgen`: offered request rate.
    rps: Option<u64>,
    /// `loadgen`: how long to sustain the offered rate, seconds.
    duration: Option<u64>,
    /// `loadgen`: JSON file holding the spec mix (array of job specs).
    spec_mix: Option<String>,
    /// `top`: seconds between dashboard refreshes.
    interval: Option<u64>,
    /// `top`: stop after this many refreshes (default: run until ^C).
    count: Option<u64>,
    /// `fuzz`: cases to sample.
    cases: usize,
    /// `fuzz`: upper bound on each case's trace length.
    max_len: u64,
    /// `fuzz`: re-check one printed repro tuple instead of sampling.
    replay: Option<String>,
    /// Content-addressed trace cache directory (`--trace-dir`, falling
    /// back to `$FETCHVP_TRACE_DIR`).
    trace_dir: Option<String>,
    /// Flags seen on the command line, for per-subcommand validation.
    used_flags: Vec<&'static str>,
}

impl Options {
    /// The trace directory to use: the `--trace-dir` flag, else the
    /// `FETCHVP_TRACE_DIR` environment variable (empty means unset).
    fn resolved_trace_dir(&self) -> Option<std::path::PathBuf> {
        if let Some(dir) = &self.trace_dir {
            return Some(std::path::PathBuf::from(dir));
        }
        std::env::var_os("FETCHVP_TRACE_DIR")
            .filter(|v| !v.is_empty())
            .map(std::path::PathBuf::from)
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut experiment = None;
    let mut positionals = Vec::new();
    let mut config = ExperimentConfig::default();
    let mut jobs = default_jobs();
    let mut csv = false;
    let mut chart = false;
    let mut quick = false;
    let mut out = None;
    let mut repeat = 3;
    let mut threshold = 100.0 * bench::DEFAULT_THRESHOLD;
    let mut cycles = None;
    let mut addr = None;
    let mut workers = None;
    let mut queue_depth = None;
    let mut result_cache = None;
    let mut peers = None;
    let mut rps = None;
    let mut duration = None;
    let mut spec_mix = None;
    let mut interval = None;
    let mut count = None;
    let mut cases = fuzz::FuzzOptions::default().cases;
    let mut max_len = fuzz::FuzzOptions::default().max_len;
    let mut replay = None;
    let mut trace_dir = None;
    let mut used_flags = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(flag) = KNOWN_FLAGS.iter().find(|&&f| f == arg.as_str()) {
            used_flags.push(*flag);
        }
        match arg.as_str() {
            "--trace-len" => {
                let v = it.next().ok_or("--trace-len needs a value")?;
                config.trace_len = v.parse().map_err(|_| format!("bad trace length `{v}`"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                let seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
                config.workloads = WorkloadParams { seed, ..config.workloads };
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                jobs = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("bad job count `{v}` (need an integer >= 1)"))?;
            }
            "--csv" => csv = true,
            "--chart" => chart = true,
            "--quick" => quick = true,
            "--out" => {
                let v = it.next().ok_or("--out needs a value")?;
                out = Some(v.clone());
            }
            "--repeat" => {
                let v = it.next().ok_or("--repeat needs a value")?;
                repeat = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("bad repeat count `{v}` (need an integer >= 1)"))?;
            }
            "--threshold" => {
                let v = it.next().ok_or("--threshold needs a value")?;
                threshold = v
                    .parse()
                    .ok()
                    .filter(|&t: &f64| t.is_finite() && t >= 0.0)
                    .ok_or(format!("bad threshold `{v}` (need a percentage >= 0)"))?;
            }
            "--cycles" => {
                let v = it.next().ok_or("--cycles needs a value (FIRST..LAST)")?;
                let window = v.split_once("..").and_then(|(a, b)| {
                    Some((a.parse().ok()?, b.parse().ok()?)).filter(|&(a, b): &(u64, u64)| a <= b)
                });
                cycles = Some(window.ok_or(format!("bad cycle window `{v}` (need FIRST..LAST)"))?);
            }
            "--addr" => {
                let v = it.next().ok_or("--addr needs a value (HOST:PORT)")?;
                addr = Some(v.clone());
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                workers = Some(
                    v.parse()
                        .ok()
                        .filter(|&n: &usize| n >= 1)
                        .ok_or(format!("bad worker count `{v}` (need an integer >= 1)"))?,
                );
            }
            "--queue-depth" => {
                let v = it.next().ok_or("--queue-depth needs a value")?;
                queue_depth = Some(
                    v.parse()
                        .ok()
                        .filter(|&n: &usize| n >= 1)
                        .ok_or(format!("bad queue depth `{v}` (need an integer >= 1)"))?,
                );
            }
            "--cases" => {
                let v = it.next().ok_or("--cases needs a value")?;
                cases = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("bad case count `{v}` (need an integer >= 1)"))?;
            }
            "--max-len" => {
                let v = it.next().ok_or("--max-len needs a value")?;
                max_len = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("bad max length `{v}` (need an integer >= 1)"))?;
            }
            "--replay" => {
                let v = it.next().ok_or("--replay needs a repro tuple")?;
                replay = Some(v.clone());
            }
            "--trace-dir" => {
                let v = it.next().ok_or("--trace-dir needs a directory path")?;
                trace_dir = Some(v.clone());
            }
            "--result-cache" => {
                let v = it.next().ok_or("--result-cache needs a value (entries; 0 disables)")?;
                result_cache =
                    Some(v.parse::<usize>().map_err(|_| format!("bad result-cache size `{v}`"))?);
            }
            "--peers" => {
                let v = it.next().ok_or("--peers needs a value (HOST:PORT,HOST:PORT,...)")?;
                peers = Some(v.clone());
            }
            "--rps" => {
                let v = it.next().ok_or("--rps needs a value")?;
                rps = Some(
                    v.parse()
                        .ok()
                        .filter(|&n: &u64| n >= 1)
                        .ok_or(format!("bad request rate `{v}` (need an integer >= 1)"))?,
                );
            }
            "--duration" => {
                let v = it.next().ok_or("--duration needs a value (seconds)")?;
                duration = Some(
                    v.parse()
                        .ok()
                        .filter(|&n: &u64| n >= 1)
                        .ok_or(format!("bad duration `{v}` (need whole seconds >= 1)"))?,
                );
            }
            "--spec-mix" => {
                let v = it.next().ok_or("--spec-mix needs a JSON file path")?;
                spec_mix = Some(v.clone());
            }
            "--interval" => {
                let v = it.next().ok_or("--interval needs a value (seconds)")?;
                interval = Some(
                    v.parse()
                        .ok()
                        .filter(|&n: &u64| n >= 1)
                        .ok_or(format!("bad interval `{v}` (need whole seconds >= 1)"))?,
                );
            }
            "--count" => {
                let v = it.next().ok_or("--count needs a value")?;
                count = Some(
                    v.parse()
                        .ok()
                        .filter(|&n: &u64| n >= 1)
                        .ok_or(format!("bad refresh count `{v}` (need an integer >= 1)"))?,
                );
            }
            other if !other.starts_with('-') => {
                if experiment.is_none() {
                    experiment = Some(other.to_string());
                } else {
                    positionals.push(other.to_string());
                }
            }
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    let experiment = experiment.ok_or("no experiment named")?;
    Ok(Options {
        experiment,
        positionals,
        config,
        jobs,
        csv,
        chart,
        quick,
        out,
        repeat,
        threshold,
        cycles,
        addr,
        workers,
        queue_depth,
        result_cache,
        peers,
        rps,
        duration,
        spec_mix,
        interval,
        count,
        cases,
        max_len,
        replay,
        trace_dir,
        used_flags,
    })
}

fn emit(table: &Table, csv: bool) {
    if csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
    }
}

fn save_trace(cfg: &ExperimentConfig, args: &[String]) -> Result<(), String> {
    let [bench, path] = args else {
        return Err("save-trace needs: <benchmark> <file>".into());
    };
    let workload =
        by_name(bench, &cfg.workloads).ok_or_else(|| format!("unknown benchmark `{bench}`"))?;
    // Streamed generation: the trace goes to disk chunk by chunk, so this
    // works at the paper's 100M scale without materializing anything.
    let file = File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))?;
    let summary = stream_program_to_store(
        workload.program(),
        bench,
        cfg.trace_len,
        DEFAULT_CHUNK_LEN,
        BufWriter::new(file),
    )
    .map_err(|e| format!("write failed: {e}"))?;
    println!(
        "wrote {} instructions of `{bench}` to {path} ({} chunk(s), {} bytes)",
        summary.instructions, summary.chunks, summary.bytes
    );
    Ok(())
}

fn trace_gen(cfg: &ExperimentConfig, opts: &Options) -> Result<(), String> {
    let [bench] = opts.positionals.as_slice() else {
        return Err("trace-gen needs: <benchmark> [--trace-dir DIR | --out FILE]".into());
    };
    let workload =
        by_name(bench, &cfg.workloads).ok_or_else(|| format!("unknown benchmark `{bench}`"))?;
    if let Some(path) = &opts.out {
        let file = File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))?;
        let summary = stream_program_to_store(
            workload.program(),
            bench,
            cfg.trace_len,
            DEFAULT_CHUNK_LEN,
            BufWriter::new(file),
        )
        .map_err(|e| format!("write failed: {e}"))?;
        println!(
            "wrote {} instructions of `{bench}` to {path} ({} chunk(s), {} bytes)",
            summary.instructions, summary.chunks, summary.bytes
        );
        return Ok(());
    }
    let root = opts.resolved_trace_dir().or_else(TraceDir::default_root).ok_or(
        "trace-gen needs a destination: --trace-dir DIR, $FETCHVP_TRACE_DIR, or --out FILE \
         (no home directory found for the default ~/.cache/fetchvp)",
    )?;
    let dir = TraceDir::new(root);
    let key = TraceKey::benchmark(bench, cfg.workloads.seed, cfg.workloads.scale, cfg.trace_len);
    let store = dir
        .open_or_create(&key, |path| {
            let file = File::create(path)?;
            stream_program_to_store(
                workload.program(),
                bench,
                cfg.trace_len,
                DEFAULT_CHUNK_LEN,
                BufWriter::new(file),
            )
            .map(|_| ())
        })
        .map_err(|e| format!("cannot populate trace cache: {e}"))?;
    let counters = dir.counters();
    let state = if counters.hits > 0 { "already cached" } else { "generated" };
    println!(
        "{state}: {} instructions of `{bench}` at {} ({} chunk(s))",
        store.len(),
        store.path().display(),
        store.chunks().len()
    );
    Ok(())
}

fn trace_info(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("trace-info needs: <file>".into());
    };
    let mut file = File::open(path).map_err(|e| format!("cannot open `{path}`: {e}"))?;
    let mut magic = [0u8; 4];
    use std::io::Read;
    let is_store = file.read_exact(&mut magic).is_ok() && &magic == MAGIC;
    if is_store {
        // Chunked store: stats stream per chunk, so a 100M-instruction
        // file is summarized in bounded memory.
        let store = TraceStore::open(path).map_err(|e| format!("read failed: {e}"))?;
        let stats = stream_store_stats(&store).map_err(|e| format!("read failed: {e}"))?;
        println!("trace `{}` ({:?})", store.name(), store.outcome());
        println!(
            "chunked store: {} chunk(s) of <= {} instructions",
            store.chunks().len(),
            store.chunk_target()
        );
        println!("{stats}");
        return Ok(());
    }
    use std::io::Seek;
    file.rewind().map_err(|e| format!("cannot rewind `{path}`: {e}"))?;
    let trace = read_trace(BufReader::new(file)).map_err(|e| format!("read failed: {e}"))?;
    println!("trace `{}` ({:?})", trace.name(), trace.outcome());
    println!("{}", trace.stats());
    Ok(())
}

fn run_asm(cfg: &ExperimentConfig, args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("run-asm needs: <file.s>".into());
    };
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let name = std::path::Path::new(path).file_stem().and_then(|s| s.to_str()).unwrap_or("program");
    let program = parse_program(name, &source).map_err(|e| format!("{path}: {e}"))?;
    let trace = trace_program(&program, cfg.trace_len);
    println!("program `{name}`: {} static instructions", program.len());
    println!(
        "{}
",
        trace.stats()
    );
    for (label, vp) in
        [("baseline (no VP)", VpConfig::None), ("stride VP", VpConfig::stride_infinite())]
    {
        let r = IdealMachine::new(IdealConfig { fetch_rate: 16, vp, ..IdealConfig::default() })
            .run(&trace);
        println!(
            "== ideal machine, fetch 16, {label}
{r}"
        );
    }
    Ok(())
}

fn run_bench(sweep: &Sweep, opts: &Options) -> Result<(), String> {
    let report = bench::run_repeat(sweep, opts.quick, opts.repeat);
    let path = opts.out.clone().unwrap_or_else(|| report.filename());
    let text = report.to_json().to_json() + "\n";
    std::fs::write(&path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    println!(
        "bench: {} workloads, {} simulated instructions in {:.2}s ({:.0} instr/s)",
        report.workloads.len(),
        report.total_instructions(),
        report.wall_seconds,
        report.sim_ips()
    );
    for w in &report.workloads {
        println!("  {:<10} {:>12} instrs  {:>12.0} instr/s", w.name, w.instructions, w.sim_ips());
    }
    if let Some(c) = &report.trace_cache {
        println!(
            "trace cache: {} hit(s), {} miss(es), {} bytes written",
            c.hits, c.misses, c.bytes
        );
    }
    println!("wrote {path}");
    Ok(())
}

fn run_trace_viz(sweep: &Sweep, opts: &Options) -> Result<(), String> {
    let [workload] = opts.positionals.as_slice() else {
        return Err("trace-viz needs: <workload> [--cycles FIRST..LAST] [--out FILE]".into());
    };
    let viz = fetchvp_experiments::traceviz::run_with(sweep, workload, opts.cycles)?;
    let path = opts.out.clone().unwrap_or_else(|| format!("trace_{workload}.json"));
    std::fs::write(&path, viz.json.clone() + "\n")
        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    println!(
        "trace-viz: {} events ({} dropped) over {} cycles of `{}`",
        viz.events, viz.dropped, viz.result.cycles, viz.workload
    );
    println!("wrote {path} — load it in Perfetto (ui.perfetto.dev) or chrome://tracing");
    Ok(())
}

fn run_bench_compare(opts: &Options) -> Result<(), String> {
    let [old_path, new_path] = opts.positionals.as_slice() else {
        return Err("bench-compare needs: <old.json> <new.json>".into());
    };
    // A missing baseline is the expected state of a fresh checkout (the
    // first bench run creates it), not a regression: warn and pass.
    if !std::path::Path::new(old_path.as_str()).exists() {
        eprintln!(
            "warning: baseline `{old_path}` not found — nothing to compare against; \
             run `fetchvp bench --out {old_path}` to create one"
        );
        println!("OK: no baseline, comparison skipped");
        return Ok(());
    }
    let load = |path: &str| -> Result<Json, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        Json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let outcome = bench::compare(&load(old_path)?, &load(new_path)?, opts.threshold / 100.0)?;
    for warning in &outcome.warnings {
        eprintln!("warning: {warning}");
    }
    for line in &outcome.lines {
        println!("{line}");
    }
    if outcome.passed() {
        println!("OK: no throughput regression beyond {:.1}%", opts.threshold);
        Ok(())
    } else {
        for regression in &outcome.regressions {
            eprintln!("REGRESSION: {regression}");
        }
        Err(format!("{} throughput regression(s)", outcome.regressions.len()))
    }
}

fn run_serve(opts: &Options) -> Result<(), String> {
    let mut config = fetchvp_server::ServerConfig::default();
    if let Some(addr) = &opts.addr {
        config.addr = addr.clone();
    }
    if let Some(workers) = opts.workers {
        config.workers = workers;
    }
    if let Some(queue_depth) = opts.queue_depth {
        config.queue_depth = queue_depth;
    }
    if let Some(entries) = opts.result_cache {
        config.result_cache_entries = entries;
    }
    if let Some(peers) = &opts.peers {
        config.peers = peers.split(',').map(|p| p.trim().to_string()).collect();
    }
    config.trace_dir = opts.resolved_trace_dir();
    if let Some(dir) = &config.trace_dir {
        println!("trace cache: {} (out-of-core jobs enabled)", dir.display());
    }
    let fleet_size = config.peers.len();
    let server =
        fetchvp_server::Server::bind(config).map_err(|e| format!("cannot bind server: {e}"))?;
    let addr = server.local_addr().map_err(|e| format!("cannot read bound address: {e}"))?;
    println!("fetchvp-server listening on {addr}");
    if fleet_size > 0 {
        println!("fleet mode: {fleet_size} members, jobs sharded by spec hash");
    }
    println!(
        "endpoints: POST /run  GET /jobs/<id>  GET /jobs/<id>/events  GET /fleet/metrics  \
         GET /healthz  GET /metrics  POST /shutdown"
    );
    server.run().map_err(|e| format!("server failed: {e}"))?;
    println!("fetchvp-server shut down cleanly");
    Ok(())
}

/// Reads a `--spec-mix` file: a JSON array of job-spec objects (a single
/// object is accepted as a mix of one).
fn read_spec_mix(path: &str) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let specs: Vec<String> = match &doc {
        Json::Array(items) => items.iter().map(Json::to_json).collect(),
        _ => vec![doc.to_json()],
    };
    if specs.is_empty() {
        return Err(format!("{path}: the spec mix is empty"));
    }
    Ok(specs)
}

fn run_loadgen(opts: &Options) -> Result<(), String> {
    let mut options = fetchvp_server::loadgen::LoadgenOptions::default();
    if let Some(addr) = &opts.addr {
        options.targets = addr.split(',').map(|t| t.trim().to_string()).collect();
    }
    if let Some(rps) = opts.rps {
        options.rps = rps;
    }
    if let Some(seconds) = opts.duration {
        options.duration = std::time::Duration::from_secs(seconds);
    }
    if let Some(path) = &opts.spec_mix {
        options.specs = read_spec_mix(path)?;
    }
    println!(
        "loadgen: {} rps for {:?} against {} (mix of {} spec(s))",
        options.rps,
        options.duration,
        options.targets.join(", "),
        options.specs.len()
    );
    let report = fetchvp_server::loadgen::run(&options)?;
    println!("{}", report.render());
    if let Some(path) = &opts.out {
        let text = report.to_json().to_json() + "\n";
        std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn run_top(opts: &Options) -> Result<(), String> {
    let mut options = top::TopOptions::default();
    if let Some(addr) = &opts.addr {
        options.addr = addr.clone();
    }
    if let Some(seconds) = opts.interval {
        options.interval = std::time::Duration::from_secs(seconds);
    }
    options.count = opts.count;
    top::run(&options)
}

fn run_fuzz(opts: &Options) -> Result<(), String> {
    if let Some(tuple) = &opts.replay {
        let spec = fuzz::CaseSpec::parse(tuple)?;
        return match fuzz::replay(&spec) {
            None => {
                println!("replay: {spec}\nreplay: every invariant holds");
                Ok(())
            }
            Some(invariant) => {
                println!("replay: {spec}");
                Err(format!("replayed case still fails: {invariant}"))
            }
        };
    }
    if opts.max_len > MAX_IN_MEMORY_TRACE_LEN {
        return Err(format!(
            "--max-len {} exceeds the in-memory limit of {MAX_IN_MEMORY_TRACE_LEN} instructions; \
             fuzzing replays every case in memory and cannot use a trace directory",
            opts.max_len
        ));
    }
    let options = fuzz::FuzzOptions {
        cases: opts.cases,
        seed: opts.config.workloads.seed,
        max_len: opts.max_len,
    };
    let report = fuzz::run(&options);
    print!("{}", report.render());
    if let Some(path) = &opts.out {
        std::fs::write(path, report.repro_lines())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("wrote {} repro tuple(s) to {path}", report.failures.len());
    }
    if report.passed() {
        Ok(())
    } else {
        Err(format!("{} invariant failure(s)", report.failures.len()))
    }
}

fn run_atlas(opts: &Options) -> Result<(), String> {
    let family = match opts.positionals.as_slice() {
        [] => "m88ksim",
        [family] => family.as_str(),
        _ => return Err("atlas takes at most one family name".into()),
    };
    // The default 1M-point grid would dominate a CI run; the atlas is a
    // map, not a measurement, so it defaults to the quick length (an
    // explicit --trace-len still wins).
    let trace_len = if opts.used_flags.contains(&"--trace-len") {
        opts.config.trace_len
    } else {
        ExperimentConfig::quick().trace_len
    };
    emit(&atlas::run(family, trace_len)?.to_table(), opts.csv);
    Ok(())
}

fn run_one(name: &str, sweep: &Sweep, opts: &Options) -> Result<(), String> {
    let cfg = sweep.config();
    let (csv, chart, positionals) = (opts.csv, opts.chart, opts.positionals.as_slice());
    #[allow(clippy::match_like_matches_macro)]
    match name {
        "save-trace" => return save_trace(cfg, positionals),
        "trace-gen" => return trace_gen(cfg, opts),
        "trace-info" => return trace_info(positionals),
        "run-asm" => return run_asm(cfg, positionals),
        "bench" => return run_bench(sweep, opts),
        "bench-compare" => return run_bench_compare(opts),
        "trace-viz" => return run_trace_viz(sweep, opts),
        "usefulness" => emit(&fetchvp_experiments::usefulness::run_with(sweep).to_table(), csv),
        "profile" => emit(&fetchvp_experiments::profile::run(cfg).to_table(), csv),
        "serve" => return run_serve(opts),
        "loadgen" => return run_loadgen(opts),
        "top" => return run_top(opts),
        "fuzz" => return run_fuzz(opts),
        "atlas" => return run_atlas(opts),
        "table3-1" => emit(&table3_1::run_with(sweep).to_table(), csv),
        "accuracy" => emit(&fetchvp_experiments::accuracy::run_with(sweep).to_table(), csv),
        "breakdown" => emit(&fetchvp_experiments::breakdown::run_with(sweep).to_table(), csv),
        "fig3-1" if chart => println!("{}", fig3_1::run_with(sweep).to_chart()),
        "fig5-1" if chart => println!("{}", fig5_1::run_with(sweep).to_chart()),
        "fig5-2" if chart => println!("{}", fig5_2::run_with(sweep).to_chart()),
        "fig5-3" if chart => println!("{}", fig5_3::run_with(sweep).to_chart()),
        "fig3-1" => emit(&fig3_1::run_with(sweep).to_table(), csv),
        "table3-2" => emit(&table3_2::run().to_table(), csv),
        "fig3-3" => emit(&fig3_3::run_with(sweep).to_table(), csv),
        "fig3-4" => emit(&fig3_4::run_with(sweep).to_table(), csv),
        "fig3-5" => emit(&fig3_5::run_with(sweep).to_table(), csv),
        "fig5-1" => emit(&fig5_1::run_with(sweep).to_table(), csv),
        "fig5-2" => emit(&fig5_2::run_with(sweep).to_table(), csv),
        "fig5-3" => emit(&fig5_3::run_with(sweep).to_table(), csv),
        "ablation-banks" => emit(&ablations::bank_sweep_with(sweep).to_table(), csv),
        "ablation-window" => emit(&ablations::window_sweep_with(sweep).to_table(), csv),
        "ablation-confidence" => emit(&ablations::confidence_sweep_with(sweep).to_table(), csv),
        "ablation-predictors" => emit(&ablations::predictor_comparison_with(sweep).to_table(), csv),
        "ablation-partial" => emit(&ablations::partial_matching_with(sweep).to_table(), csv),
        "ablation-btb" => emit(&ablations::btb_sensitivity_with(sweep).to_table(), csv),
        "ablation-fetch" => emit(&ablations::fetch_mechanisms_with(sweep).to_table(), csv),
        "ablation-penalty" => emit(&ablations::penalty_sweep_with(sweep).to_table(), csv),
        "ablation-tc" => emit(&ablations::tc_geometry_with(sweep).to_table(), csv),
        "ablation-hints" => emit(&ablations::hint_study_with(sweep).to_table(), csv),
        "ablation-model" => emit(&ablations::model_assumptions_with(sweep).to_table(), csv),
        "ablation-seeds" => emit(&ablations::seed_stability_with(sweep).to_table(), csv),
        "ablations" => {
            for exp in [
                "ablation-banks",
                "ablation-window",
                "ablation-confidence",
                "ablation-predictors",
                "ablation-partial",
                "ablation-btb",
                "ablation-fetch",
                "ablation-penalty",
                "ablation-tc",
                "ablation-hints",
                "ablation-model",
                "ablation-seeds",
            ] {
                run_one(exp, sweep, opts)?;
            }
        }
        "all" => {
            for exp in [
                "table3-1", "fig3-1", "table3-2", "fig3-3", "fig3-4", "fig3-5", "fig5-1", "fig5-2",
                "fig5-3",
            ] {
                run_one(exp, sweep, opts)?;
            }
        }
        other => {
            let suggestion = nearest_command(other)
                .map(|cmd| format!(" (did you mean `{cmd}`?)"))
                .unwrap_or_default();
            return Err(format!("unknown experiment `{other}`{suggestion}\n{USAGE}"));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--version" || a == "-V") {
        println!("fetchvp {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    let options = match parse_args(&args)
        .and_then(|o| validate_invocation(&o).map(|()| o))
        .and_then(|o| validate_scale(&o).map(|()| o))
    {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // One sweep (and thus one trace cache) shared by everything this
    // invocation runs, including the `all`/`ablations` meta-experiments.
    // `bench --quick` caps the trace length at the quick configuration
    // (an explicit smaller `--trace-len` still wins).
    let mut config = options.config;
    if options.experiment == "bench" && options.quick {
        config.trace_len = config.trace_len.min(ExperimentConfig::quick().trace_len);
    }
    let trace_dir = options.resolved_trace_dir().map(|root| Arc::new(TraceDir::new(root)));
    let sweep = Sweep::with_trace_dir(&config, trace_dir, options.jobs);
    match run_one(&options.experiment, &sweep, &options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Options, String> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_experiment_and_flags() {
        let o = opts(&["fig3-1", "--trace-len", "1000", "--seed", "7", "--csv"]).unwrap();
        assert_eq!(o.experiment, "fig3-1");
        assert_eq!(o.config.trace_len, 1000);
        assert_eq!(o.config.workloads.seed, 7);
        assert_eq!(o.jobs, default_jobs());
        assert!(o.csv);
    }

    #[test]
    fn parses_jobs_flag() {
        let o = opts(&["fig3-1", "--jobs", "4"]).unwrap();
        assert_eq!(o.jobs, 4);
        assert!(opts(&["fig3-1", "--jobs", "0"]).is_err());
        assert!(opts(&["fig3-1", "--jobs", "many"]).is_err());
        assert!(opts(&["fig3-1", "--jobs"]).is_err());
    }

    #[test]
    fn rejects_missing_experiment() {
        assert!(opts(&["--csv"]).is_err());
    }

    #[test]
    fn rejects_unknown_flag() {
        assert!(opts(&["fig3-1", "--wat"]).is_err());
    }

    #[test]
    fn rejects_unknown_experiment() {
        let o = opts(&["fig9-9"]).unwrap();
        let sweep = Sweep::with_jobs(&o.config, o.jobs);
        assert!(run_one(&o.experiment, &sweep, &o).is_err());
    }

    #[test]
    fn table3_2_runs_end_to_end() {
        let o = opts(&["table3-2", "--csv"]).unwrap();
        let sweep = Sweep::with_jobs(&o.config, o.jobs);
        run_one(&o.experiment, &sweep, &o).unwrap();
    }

    #[test]
    fn parses_bench_flags() {
        let o = opts(&["bench", "--quick", "--out", "report.json"]).unwrap();
        assert!(o.quick);
        assert_eq!(o.out.as_deref(), Some("report.json"));
        assert!((o.threshold - 15.0).abs() < 1e-12, "default threshold is 15%");
        assert_eq!(o.repeat, 3, "bench defaults to best-of-3 timing");
        assert!(opts(&["bench", "--out"]).is_err());
    }

    #[test]
    fn parses_repeat() {
        assert_eq!(opts(&["bench", "--repeat", "5"]).unwrap().repeat, 5);
        assert!(opts(&["bench", "--repeat", "0"]).is_err());
        assert!(opts(&["bench", "--repeat", "many"]).is_err());
        assert!(opts(&["bench", "--repeat"]).is_err());
    }

    #[test]
    fn parses_threshold() {
        let o = opts(&["bench-compare", "a.json", "b.json", "--threshold", "7.5"]).unwrap();
        assert_eq!(o.positionals, ["a.json", "b.json"]);
        assert!((o.threshold - 7.5).abs() < 1e-12);
        assert!(opts(&["bench-compare", "--threshold", "-3"]).is_err());
        assert!(opts(&["bench-compare", "--threshold", "wat"]).is_err());
    }

    #[test]
    fn parses_serve_flags() {
        let o = opts(&["serve", "--addr", "127.0.0.1:0", "--workers", "3", "--queue-depth", "5"])
            .unwrap();
        assert_eq!(o.experiment, "serve");
        assert_eq!(o.addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(o.workers, Some(3));
        assert_eq!(o.queue_depth, Some(5));
        assert!(opts(&["serve", "--workers", "0"]).is_err());
        assert!(opts(&["serve", "--queue-depth", "nope"]).is_err());
        assert!(opts(&["serve", "--addr"]).is_err());
    }

    #[test]
    fn usage_mentions_serve_and_version() {
        assert!(USAGE.contains("serve [--addr HOST:PORT]"));
        assert!(USAGE.contains("loadgen"));
        assert!(USAGE.contains("--peers"));
        assert!(USAGE.contains("--version"));
    }

    #[test]
    fn parses_fleet_serve_flags() {
        let o = opts(&[
            "serve",
            "--addr",
            "127.0.0.1:7001",
            "--peers",
            "127.0.0.1:7001, 127.0.0.1:7002",
            "--result-cache",
            "512",
        ])
        .unwrap();
        validate_invocation(&o).unwrap();
        assert_eq!(o.peers.as_deref(), Some("127.0.0.1:7001, 127.0.0.1:7002"));
        assert_eq!(o.result_cache, Some(512));
        // 0 disables the cache and must parse.
        assert_eq!(opts(&["serve", "--result-cache", "0"]).unwrap().result_cache, Some(0));
        assert!(opts(&["serve", "--result-cache", "lots"]).is_err());
        assert!(opts(&["serve", "--peers"]).is_err());
        // --peers belongs to serve, not the experiments.
        let o = opts(&["fig3-1", "--peers", "127.0.0.1:7001"]).unwrap();
        assert!(validate_invocation(&o).is_err());
    }

    #[test]
    fn parses_loadgen_flags() {
        let o = opts(&[
            "loadgen",
            "--addr",
            "127.0.0.1:7001,127.0.0.1:7002",
            "--rps",
            "1500",
            "--duration",
            "3",
            "--spec-mix",
            "mix.json",
            "--out",
            "report.json",
        ])
        .unwrap();
        validate_invocation(&o).unwrap();
        assert_eq!(o.rps, Some(1500));
        assert_eq!(o.duration, Some(3));
        assert_eq!(o.spec_mix.as_deref(), Some("mix.json"));
        assert_eq!(o.out.as_deref(), Some("report.json"));
        assert!(opts(&["loadgen", "--rps", "0"]).is_err());
        assert!(opts(&["loadgen", "--duration", "0.5"]).is_err());
        // loadgen is a client: it takes no server-side flags.
        let o = opts(&["loadgen", "--workers", "4"]).unwrap();
        assert!(validate_invocation(&o).is_err());
    }

    #[test]
    fn spec_mix_files_accept_arrays_and_single_objects() {
        let dir = std::env::temp_dir().join(format!("fetchvp-cli-mix-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mix.json");
        std::fs::write(&path, r#"[{"experiment": "table3-1"}, {"experiment": "accuracy"}]"#)
            .unwrap();
        let specs = read_spec_mix(path.to_str().unwrap()).unwrap();
        assert_eq!(specs.len(), 2);
        assert!(specs[0].contains("table3-1"));
        std::fs::write(&path, r#"{"experiment": "breakdown"}"#).unwrap();
        assert_eq!(read_spec_mix(path.to_str().unwrap()).unwrap().len(), 1);
        std::fs::write(&path, "[]").unwrap();
        assert!(read_spec_mix(path.to_str().unwrap()).is_err());
        std::fs::write(&path, "not json").unwrap();
        assert!(read_spec_mix(path.to_str().unwrap()).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("serve", "serve"), 0);
        assert_eq!(edit_distance("serv", "serve"), 1);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn unknown_experiments_get_a_suggestion() {
        assert_eq!(nearest_command("serv"), Some("serve"));
        assert_eq!(nearest_command("ablation-bank"), Some("ablation-banks"));
        assert_eq!(nearest_command("fig51"), Some("fig5-1"));
        assert_eq!(nearest_command("zzzzzzzzzzzz"), None);
        let o = opts(&["benhc"]).unwrap();
        let sweep = Sweep::with_jobs(&o.config, o.jobs);
        let err = run_one(&o.experiment, &sweep, &o).unwrap_err();
        assert!(err.contains("did you mean `bench`?"), "{err}");
    }

    #[test]
    fn parses_cycles_window() {
        let o = opts(&["trace-viz", "gcc", "--cycles", "100..500"]).unwrap();
        assert_eq!(o.experiment, "trace-viz");
        assert_eq!(o.positionals, ["gcc"]);
        assert_eq!(o.cycles, Some((100, 500)));
        assert!(opts(&["trace-viz", "gcc", "--cycles", "500..100"]).is_err());
        assert!(opts(&["trace-viz", "gcc", "--cycles", "abc"]).is_err());
        assert!(opts(&["trace-viz", "gcc", "--cycles"]).is_err());
    }

    #[test]
    fn trace_viz_needs_a_workload() {
        let o = opts(&["trace-viz"]).unwrap();
        let sweep = Sweep::with_jobs(&o.config, o.jobs);
        assert!(run_one(&o.experiment, &sweep, &o).is_err());
    }

    #[test]
    fn rejects_inapplicable_known_flags() {
        // Regression: `fetchvp table3-1 --quick` used to exit 0, silently
        // ignoring the flag. Known flags must be rejected on subcommands
        // that do not take them.
        let o = opts(&["table3-1", "--quick"]).unwrap();
        let err = validate_invocation(&o).unwrap_err();
        assert!(err.contains("does not take the flag `--quick`"), "{err}");

        // Near-miss flags get the did-you-mean path.
        let o = opts(&["fuzz", "--cycles", "0..9"]).unwrap();
        let err = validate_invocation(&o).unwrap_err();
        assert!(err.contains("did you mean `--cases`?"), "{err}");

        // Applicable flags still pass on every surface they belong to.
        for line in [
            vec!["fig3-1", "--trace-len", "500", "--jobs", "2", "--csv", "--chart"],
            vec!["bench", "--quick", "--repeat", "2", "--out", "r.json"],
            vec!["trace-viz", "gcc", "--cycles", "0..9", "--out", "t.json"],
            vec!["serve", "--addr", "127.0.0.1:0", "--workers", "2"],
            vec!["fuzz", "--cases", "8", "--seed", "7", "--max-len", "900"],
            vec!["atlas", "mgrid", "--trace-len", "800"],
        ] {
            let o = opts(&line).unwrap();
            validate_invocation(&o).unwrap_or_else(|e| panic!("{line:?}: {e}"));
        }
    }

    #[test]
    fn rejects_stray_positionals() {
        // Regression: `fetchvp fig3-1 extra` used to exit 0 with the
        // stray word silently dropped.
        let o = opts(&["fig3-1", "extra"]).unwrap();
        let err = validate_invocation(&o).unwrap_err();
        assert!(err.contains("positional"), "{err}");
        assert!(err.contains("`extra`"), "{err}");
        validate_invocation(&opts(&["save-trace", "gcc", "f.bin"]).unwrap()).unwrap();
        assert!(validate_invocation(&opts(&["save-trace", "gcc", "f.bin", "x"]).unwrap()).is_err());
    }

    #[test]
    fn unknown_subcommands_still_take_the_suggestion_path() {
        // validate_invocation must not shadow run_one's did-you-mean
        // handling for unknown subcommands.
        let o = opts(&["benhc", "--quick"]).unwrap();
        validate_invocation(&o).unwrap();
    }

    #[test]
    fn parses_fuzz_flags() {
        let o = opts(&["fuzz", "--cases", "16", "--seed", "7", "--max-len", "9000"]).unwrap();
        assert_eq!(o.cases, 16);
        assert_eq!(o.config.workloads.seed, 7);
        assert_eq!(o.max_len, 9000);
        assert!(o.replay.is_none());
        assert!(opts(&["fuzz", "--cases", "0"]).is_err());
        assert!(opts(&["fuzz", "--max-len", "wat"]).is_err());
        assert!(opts(&["fuzz", "--replay"]).is_err());
        let o = opts(&["fuzz", "--replay", "gcc did=1 len=600"]).unwrap();
        assert_eq!(o.replay.as_deref(), Some("gcc did=1 len=600"));
    }

    #[test]
    fn fuzz_replay_runs_end_to_end() {
        let o = opts(&["fuzz", "--replay", "m88ksim did=0.5 len=600"]).unwrap();
        run_fuzz(&o).unwrap();
        let o = opts(&["fuzz", "--replay", "nonesuch len=600"]).unwrap();
        assert!(run_fuzz(&o).is_err());
    }

    #[test]
    fn atlas_rejects_unknown_families() {
        let o = opts(&["atlas", "nonesuch"]).unwrap();
        assert!(run_atlas(&o).is_err());
    }

    #[test]
    fn parses_trace_dir_flag() {
        let o = opts(&["fig3-1", "--trace-dir", "/tmp/fetchvp-cache"]).unwrap();
        assert_eq!(o.trace_dir.as_deref(), Some("/tmp/fetchvp-cache"));
        validate_invocation(&o).unwrap();
        assert!(opts(&["fig3-1", "--trace-dir"]).is_err());
        // Surfaces that never read traces from disk reject the flag.
        let o = opts(&["trace-info", "f.bin", "--trace-dir", "/tmp/x"]).unwrap();
        assert!(validate_invocation(&o).is_err());
        // serve and trace-gen accept it.
        validate_invocation(&opts(&["serve", "--trace-dir", "/tmp/x"]).unwrap()).unwrap();
        validate_invocation(&opts(&["trace-gen", "gcc", "--trace-dir", "/tmp/x"]).unwrap())
            .unwrap();
    }

    #[test]
    fn scale_gate_distinguishes_capability_from_invalid() {
        let big = (MAX_IN_MEMORY_TRACE_LEN + 1).to_string();
        // A machine sweep without a trace dir: the error names the fix.
        let o = opts(&["fig3-1", "--trace-len", &big]).unwrap();
        if o.resolved_trace_dir().is_none() {
            let err = validate_scale(&o).unwrap_err();
            assert!(err.contains("--trace-dir"), "{err}");
        }
        // The same length with a dir passes the gate.
        let o = opts(&["fig3-1", "--trace-len", &big, "--trace-dir", "/tmp/x"]).unwrap();
        validate_scale(&o).unwrap();
        // Analysis experiments are blamed even with a dir.
        let o = opts(&["fig3-4", "--trace-len", &big, "--trace-dir", "/tmp/x"]).unwrap();
        let err = validate_scale(&o).unwrap_err();
        assert!(err.contains("cannot replay out-of-core"), "{err}");
        // save-trace streams at any in-cap size.
        let o = opts(&["save-trace", "gcc", "f.fvps", "--trace-len", &big]).unwrap();
        validate_scale(&o).unwrap();
        // Beyond even the out-of-core cap: plainly invalid.
        let too_big = (jobspec::MAX_TRACE_LEN_OOC + 1).to_string();
        let o = opts(&["fig3-1", "--trace-len", &too_big, "--trace-dir", "/tmp/x"]).unwrap();
        let err = validate_scale(&o).unwrap_err();
        assert!(err.contains("out-of-core cap"), "{err}");
    }

    #[test]
    fn fuzz_rejects_out_of_core_max_len() {
        let big = (MAX_IN_MEMORY_TRACE_LEN + 1).to_string();
        let o = opts(&["fuzz", "--max-len", &big]).unwrap();
        let err = run_fuzz(&o).unwrap_err();
        assert!(err.contains("in memory"), "{err}");
        assert!(err.contains(&MAX_IN_MEMORY_TRACE_LEN.to_string()), "{err}");
    }

    #[test]
    fn save_trace_writes_chunked_stores_and_trace_info_reads_both_formats() {
        let dir = std::env::temp_dir().join(format!("fetchvp-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store_path = dir.join("go.fvps");
        let o = opts(&["save-trace", "go", store_path.to_str().unwrap(), "--trace-len", "500"])
            .unwrap();
        save_trace(&o.config, &o.positionals).unwrap();
        let magic = &std::fs::read(&store_path).unwrap()[..4];
        assert_eq!(magic, MAGIC, "save-trace must write the chunked format");
        trace_info(&[store_path.to_str().unwrap().to_string()]).unwrap();

        // The legacy FVPT format stays readable.
        let legacy_path = dir.join("go-legacy.bin");
        let workload = by_name("go", &o.config.workloads).unwrap();
        let trace = trace_program(workload.program(), 500);
        let file = File::create(&legacy_path).unwrap();
        fetchvp_trace::write_trace(&trace, BufWriter::new(file)).unwrap();
        trace_info(&[legacy_path.to_str().unwrap().to_string()]).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_gen_populates_and_reuses_the_cache() {
        let dir = std::env::temp_dir().join(format!("fetchvp-cli-gen-{}", std::process::id()));
        let o = opts(&[
            "trace-gen",
            "compress",
            "--trace-len",
            "400",
            "--trace-dir",
            dir.to_str().unwrap(),
        ])
        .unwrap();
        trace_gen(&o.config, &o).unwrap();
        let files = || {
            std::fs::read_dir(&dir)
                .map(|entries| entries.filter_map(Result::ok).count())
                .unwrap_or(0)
        };
        assert_eq!(files(), 1, "one store generated");
        trace_gen(&o.config, &o).unwrap();
        assert_eq!(files(), 1, "second run reuses the cached store");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bench_compare_passes_when_the_baseline_is_missing() {
        let o = opts(&["bench-compare", "/nonexistent/baseline.json", "new.json"]).unwrap();
        run_one(&o.experiment, &Sweep::with_jobs(&o.config, o.jobs), &o).unwrap();
    }

    #[test]
    fn bench_compare_needs_two_files() {
        let o = opts(&["bench-compare", "only-one.json"]).unwrap();
        let sweep = Sweep::with_jobs(&o.config, o.jobs);
        assert!(run_one(&o.experiment, &sweep, &o).is_err());
    }
}
