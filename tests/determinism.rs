//! Reproducibility: identical seeds produce bit-identical results at every
//! level of the stack — the property that makes the experiment tables in
//! `EXPERIMENTS.md` reproducible on any machine.

use std::sync::Arc;

use fetchvp_core::{
    BtbKind, FrontEnd, IdealConfig, IdealMachine, RealisticConfig, RealisticMachine, VpConfig,
};
use fetchvp_dfg::analyze;
use fetchvp_experiments::{
    ablations, fig3_1, fig5_3, for_each_trace, ExperimentConfig, Sweep, TraceCache,
};
use fetchvp_fetch::TraceCacheConfig;
use fetchvp_trace::trace_program;
use fetchvp_workloads::{suite, WorkloadParams};

#[test]
fn traces_are_bit_identical_across_runs() {
    let params = WorkloadParams::default();
    for (a, b) in suite(&params).iter().zip(suite(&params).iter()) {
        let ta = trace_program(a.program(), 10_000);
        let tb = trace_program(b.program(), 10_000);
        assert_eq!(ta, tb, "{}", a.name());
    }
}

#[test]
fn machine_results_are_identical_across_runs() {
    let w = &suite(&WorkloadParams::default())[1]; // m88ksim
    let trace = trace_program(w.program(), 20_000);
    let run = || {
        IdealMachine::new(IdealConfig {
            fetch_rate: 16,
            vp: VpConfig::stride_infinite(),
            ..IdealConfig::default()
        })
        .run(&trace)
    };
    assert_eq!(run(), run());

    let fe =
        FrontEnd::TraceCache { config: TraceCacheConfig::paper(), btb: BtbKind::two_level_paper() };
    let run = || {
        RealisticMachine::new(RealisticConfig::paper(fe, VpConfig::stride_infinite())).run(&trace)
    };
    assert_eq!(run(), run());
}

#[test]
fn analyses_are_identical_across_runs() {
    let w = &suite(&WorkloadParams::default())[7]; // vortex
    let trace = trace_program(w.program(), 20_000);
    assert_eq!(analyze(&trace), analyze(&trace));
}

#[test]
fn experiment_runners_are_identical_across_runs() {
    let cfg = ExperimentConfig { trace_len: 5_000, ..ExperimentConfig::default() };
    assert_eq!(fig3_1::run(&cfg), fig3_1::run(&cfg));
    assert_eq!(fig5_3::run(&cfg), fig5_3::run(&cfg));
}

/// The tentpole guarantee: a parallel sweep's rendered tables are
/// byte-identical to the serial (`--jobs 1`) oracle.
#[test]
fn parallel_sweeps_are_byte_identical_to_serial() {
    let cfg = ExperimentConfig { trace_len: 5_000, ..ExperimentConfig::default() };
    let serial = Sweep::with_jobs(&cfg, 1);
    let parallel = Sweep::with_jobs(&cfg, 8);

    assert_eq!(
        fig3_1::run_with(&serial).to_table().to_string(),
        fig3_1::run_with(&parallel).to_table().to_string(),
        "fig3-1 tables diverge between --jobs 1 and --jobs 8"
    );
    assert_eq!(
        ablations::window_sweep_with(&serial).to_table().to_string(),
        ablations::window_sweep_with(&parallel).to_table().to_string(),
        "ablation-window tables diverge between --jobs 1 and --jobs 8"
    );
    // Both sweeps traced each integer benchmark exactly once, even with 8
    // workers racing over two experiments.
    assert_eq!(serial.cache().generated(), 8);
    assert_eq!(parallel.cache().generated(), 8);
}

/// The trace cache hands out the *same* trace (same allocation, not just
/// equal contents) on every request, and matches the serial
/// `for_each_trace` oracle bit-for-bit.
#[test]
fn trace_cache_shares_one_trace_per_workload() {
    let cfg = ExperimentConfig { trace_len: 2_000, ..ExperimentConfig::default() };
    let cache = TraceCache::new(&cfg);
    let first = cache.trace(0);
    let again = cache.trace(0);
    assert!(Arc::ptr_eq(&first, &again), "repeated requests must return the same Arc");
    assert_eq!(cache.generated(), 1, "one generation despite two requests");

    let mut index = 0;
    for_each_trace(&cfg, |w, serial_trace| {
        assert_eq!(
            *cache.trace(index),
            *serial_trace,
            "{}: cached trace diverges from the serial oracle",
            w.name()
        );
        index += 1;
    });
    assert_eq!(cache.generated(), 8);
}

#[test]
fn different_seeds_change_the_data_but_not_the_conclusions() {
    // Seed robustness: the headline comparison (fetch-40 speedup greatly
    // exceeds fetch-4 speedup on m88ksim) holds for several seeds.
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        let params = WorkloadParams { seed, ..WorkloadParams::default() };
        let w = fetchvp_workloads::by_name("m88ksim", &params).unwrap();
        let trace = trace_program(w.program(), 40_000);
        let speedup = |rate| {
            let base = IdealMachine::new(IdealConfig {
                fetch_rate: rate,
                vp: VpConfig::None,
                ..IdealConfig::default()
            })
            .run(&trace);
            let vp = IdealMachine::new(IdealConfig {
                fetch_rate: rate,
                vp: VpConfig::stride_infinite(),
                ..IdealConfig::default()
            })
            .run(&trace);
            vp.speedup_over(&base)
        };
        let (narrow, wide) = (speedup(4), speedup(40));
        assert!(wide > narrow + 0.20, "seed {seed}: fetch-4 {narrow:.2} vs fetch-40 {wide:.2}");
    }
}
