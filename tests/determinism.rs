//! Reproducibility: identical seeds produce bit-identical results at every
//! level of the stack — the property that makes the experiment tables in
//! `EXPERIMENTS.md` reproducible on any machine.

use fetchvp_core::{BtbKind, FrontEnd, IdealConfig, IdealMachine, RealisticConfig, RealisticMachine, VpConfig};
use fetchvp_dfg::analyze;
use fetchvp_experiments::{fig3_1, fig5_3, ExperimentConfig};
use fetchvp_fetch::TraceCacheConfig;
use fetchvp_trace::trace_program;
use fetchvp_workloads::{suite, WorkloadParams};

#[test]
fn traces_are_bit_identical_across_runs() {
    let params = WorkloadParams::default();
    for (a, b) in suite(&params).iter().zip(suite(&params).iter()) {
        let ta = trace_program(a.program(), 10_000);
        let tb = trace_program(b.program(), 10_000);
        assert_eq!(ta, tb, "{}", a.name());
    }
}

#[test]
fn machine_results_are_identical_across_runs() {
    let w = &suite(&WorkloadParams::default())[1]; // m88ksim
    let trace = trace_program(w.program(), 20_000);
    let run = || {
        IdealMachine::new(IdealConfig {
            fetch_rate: 16,
            vp: VpConfig::stride_infinite(),
            ..IdealConfig::default()
        })
        .run(&trace)
    };
    assert_eq!(run(), run());

    let fe = FrontEnd::TraceCache {
        config: TraceCacheConfig::paper(),
        btb: BtbKind::two_level_paper(),
    };
    let run = || {
        RealisticMachine::new(RealisticConfig::paper(fe, VpConfig::stride_infinite())).run(&trace)
    };
    assert_eq!(run(), run());
}

#[test]
fn analyses_are_identical_across_runs() {
    let w = &suite(&WorkloadParams::default())[7]; // vortex
    let trace = trace_program(w.program(), 20_000);
    assert_eq!(analyze(&trace), analyze(&trace));
}

#[test]
fn experiment_runners_are_identical_across_runs() {
    let cfg = ExperimentConfig { trace_len: 5_000, ..ExperimentConfig::default() };
    assert_eq!(fig3_1::run(&cfg), fig3_1::run(&cfg));
    assert_eq!(fig5_3::run(&cfg), fig5_3::run(&cfg));
}

#[test]
fn different_seeds_change_the_data_but_not_the_conclusions() {
    // Seed robustness: the headline comparison (fetch-40 speedup greatly
    // exceeds fetch-4 speedup on m88ksim) holds for several seeds.
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        let params = WorkloadParams { seed, ..WorkloadParams::default() };
        let w = fetchvp_workloads::by_name("m88ksim", &params).unwrap();
        let trace = trace_program(w.program(), 40_000);
        let speedup = |rate| {
            let base = IdealMachine::new(IdealConfig {
                fetch_rate: rate,
                vp: VpConfig::None,
                ..IdealConfig::default()
            })
            .run(&trace);
            let vp = IdealMachine::new(IdealConfig {
                fetch_rate: rate,
                vp: VpConfig::stride_infinite(),
                ..IdealConfig::default()
            })
            .run(&trace);
            vp.speedup_over(&base)
        };
        let (narrow, wide) = (speedup(4), speedup(40));
        assert!(
            wide > narrow + 0.20,
            "seed {seed}: fetch-4 {narrow:.2} vs fetch-40 {wide:.2}"
        );
    }
}
