//! Disk-backed sweeps must be invisible in the results: a figure run
//! through the content-addressed trace cache is byte-identical to the
//! in-memory run, a warm cache regenerates nothing, and crossing the
//! in-memory trace-length boundary without the disk path is an explicit
//! panic, not an OOM.

use std::path::PathBuf;
use std::sync::Arc;

use fetchvp_experiments::{bench, fig3_1, ExperimentConfig, Sweep, MAX_IN_MEMORY_TRACE_LEN};
use fetchvp_tracestore::{stream_store_stats, TraceDir};

/// A unique scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("fetchvp-ooc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

fn small_config() -> ExperimentConfig {
    ExperimentConfig { trace_len: 2000, ..ExperimentConfig::default() }
}

#[test]
fn disk_backed_sweeps_match_in_memory_results_and_stay_warm() {
    let cfg = small_config();
    let root = scratch("fig31");

    let mem = fig3_1::run_with(&Sweep::with_jobs(&cfg, 1)).to_table().to_csv();

    // Cold disk cache: same figure, every trace generated to disk once.
    let cold_dir = Arc::new(TraceDir::new(&root));
    let cold_sweep = Sweep::with_trace_dir(&cfg, Some(Arc::clone(&cold_dir)), 1);
    let cold = fig3_1::run_with(&cold_sweep).to_table().to_csv();
    assert_eq!(mem, cold, "disk-backed replay must not change the figure");
    let counters = cold_dir.counters();
    assert!(counters.misses > 0 && counters.hits == 0, "cold cache generates: {counters:?}");
    assert!(counters.bytes > 0);

    // Warm cache, fresh process state: zero generation, all hits.
    let warm_dir = Arc::new(TraceDir::new(&root));
    let warm_sweep = Sweep::with_trace_dir(&cfg, Some(Arc::clone(&warm_dir)), 1);
    let warm = fig3_1::run_with(&warm_sweep).to_table().to_csv();
    assert_eq!(mem, warm);
    assert_eq!(warm_sweep.cache().generated(), 0, "warm cache must not regenerate");
    let counters = warm_dir.counters();
    assert_eq!(counters.misses, 0, "{counters:?}");
    assert!(counters.hits > 0, "{counters:?}");
    assert_eq!(counters.bytes, 0, "no bytes written when warm");

    std::fs::remove_dir_all(&root).expect("remove scratch dir");
}

#[test]
fn per_workload_stores_cover_the_full_trace() {
    let cfg = small_config();
    let root = scratch("stores");
    let sweep = Sweep::with_trace_dir(&cfg, Some(Arc::new(TraceDir::new(&root))), 1);
    let stats = sweep.per_workload_store_extended(|workload, store| {
        assert_eq!(store.name(), workload.name());
        assert_eq!(store.len(), cfg.trace_len);
        stream_store_stats(store).expect("streamed stats")
    });
    // The streamed per-chunk stats equal the stats of the materialized
    // trace (which itself decodes from the same store here).
    for (name, streamed) in stats {
        let index = sweep
            .cache()
            .workloads(true)
            .iter()
            .position(|w| w.name() == name)
            .expect("store name is a suite workload");
        assert_eq!(streamed, sweep.cache().trace(index).stats(), "{name}");
    }
    std::fs::remove_dir_all(&root).expect("remove scratch dir");
}

#[test]
fn bench_reports_trace_cache_counters_only_when_disk_backed() {
    let cfg = small_config();
    let in_memory = bench::run_with(&Sweep::with_jobs(&cfg, 1), true);
    assert!(in_memory.trace_cache.is_none(), "no counters without a trace dir");
    // (`trace_cache` still appears deeper in the JSON as a *machine*
    // label — only the top-level counter section must be absent.)
    assert!(in_memory.to_json().get("trace_cache").is_none());

    let root = scratch("bench");
    let sweep = Sweep::with_trace_dir(&cfg, Some(Arc::new(TraceDir::new(&root))), 1);
    let report = bench::run_with(&sweep, true);
    let counters = report.trace_cache.expect("disk-backed bench reports counters");
    assert!(counters.misses > 0);
    let json = report.to_json();
    assert_eq!(
        json.get_path("trace_cache.misses").and_then(fetchvp_metrics::Json::as_u64),
        Some(counters.misses),
        "report JSON carries the counters"
    );
    std::fs::remove_dir_all(&root).expect("remove scratch dir");
}

#[test]
#[should_panic(expected = "exceeds the in-memory limit")]
fn materializing_an_out_of_core_trace_panics_with_the_limit() {
    let cfg =
        ExperimentConfig { trace_len: MAX_IN_MEMORY_TRACE_LEN + 1, ..ExperimentConfig::default() };
    // The assert fires before any generation, so this is instant.
    Sweep::with_jobs(&cfg, 1).cache().trace(0);
}

#[test]
#[should_panic(expected = "--trace-dir")]
fn out_of_core_replay_without_a_trace_dir_panics_with_the_fix() {
    let cfg =
        ExperimentConfig { trace_len: MAX_IN_MEMORY_TRACE_LEN + 1, ..ExperimentConfig::default() };
    Sweep::with_jobs(&cfg, 1).cache().store(0);
}
