//! Integration tests for the bench report: determinism of the counter
//! sections across worker counts, subsystem coverage, and JSON round-trip
//! shape guarantees.

use fetchvp_experiments::{bench, ExperimentConfig};
use fetchvp_metrics::Json;

fn small_config() -> ExperimentConfig {
    ExperimentConfig { trace_len: 5_000, ..ExperimentConfig::default() }
}

/// The counter and gauge sections come from the simulation, not the clock,
/// so they must be byte-identical whether the suite ran on 1 or 8 workers.
#[test]
fn bench_counters_identical_across_jobs() {
    let cfg = small_config();
    let serial = bench::run(&cfg, false, 1);
    let parallel = bench::run(&cfg, false, 8);
    assert_eq!(serial.workloads.len(), parallel.workloads.len());
    for (a, b) in serial.workloads.iter().zip(&parallel.workloads) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.instructions, b.instructions, "{}: instruction counts differ", a.name);
        assert_eq!(
            a.registry.counters_json().to_json(),
            b.registry.counters_json().to_json(),
            "{}: counter bytes differ between --jobs 1 and --jobs 8",
            a.name
        );
        assert_eq!(
            a.registry.gauges_json().to_json(),
            b.registry.gauges_json().to_json(),
            "{}: gauge bytes differ between --jobs 1 and --jobs 8",
            a.name
        );
    }
}

/// Every workload's snapshot must span the five counted subsystems.
#[test]
fn bench_covers_five_subsystems() {
    let report = bench::run(&small_config(), false, 1);
    assert!(!report.workloads.is_empty());
    for w in &report.workloads {
        let namespaces = w.registry.namespaces();
        for required in ["fetch", "machine", "predictor", "sched", "trace"] {
            assert!(
                namespaces.contains(&required),
                "{}: missing `{required}.*` counters (got {namespaces:?})",
                w.name
            );
        }
    }
}

/// A serialized report reparses, and re-serializing the parse is
/// byte-identical (stable key order, shortest-round-trip floats).
#[test]
fn bench_report_round_trips() {
    let report = bench::run(&small_config(), false, 1);
    let text = report.to_json().to_json();
    let reparsed = Json::parse(&text).expect("bench report must be valid JSON");
    assert_eq!(reparsed.to_json(), text, "re-serialization is not byte-stable");
    assert_eq!(
        reparsed.get("schema").and_then(Json::as_str),
        Some(bench::SCHEMA),
        "schema field missing or wrong"
    );
}

/// Counters are integers end to end: no counter value may be serialized
/// through a float (which would lose precision past 2^53).
#[test]
fn bench_counters_are_integer_only() {
    let report = bench::run(&small_config(), false, 1);
    let doc = report.to_json();
    let workloads = doc.get("workloads").and_then(Json::as_object).expect("workloads object");
    for (name, section) in workloads {
        let counters = section.get("counters").and_then(Json::as_object).expect("counters object");
        assert!(!counters.is_empty(), "{name}: empty counters section");
        for (key, value) in counters {
            assert!(
                matches!(value, Json::UInt(_)),
                "{name}: counter `{key}` serialized as {value:?}, expected an integer"
            );
        }
    }
}

/// The `profile` phase times are measured inside each workload's wall
/// interval, so they can never exceed it — and the four phases *are* the
/// work, so their sum must account for the bulk of it (the remainder is
/// harness overhead: statistics and allocation teardown).
#[test]
fn profile_phases_sum_to_wall_time() {
    let report = fetchvp_experiments::profile::run(&small_config());
    assert_eq!(report.workloads.len(), 8);
    for w in &report.workloads {
        let sum = w.phases.sum();
        assert!(
            sum <= w.wall_seconds + 1e-9,
            "{}: phase sum {sum:.4}s exceeds wall time {:.4}s",
            w.name,
            w.wall_seconds
        );
        assert!(
            sum >= 0.5 * w.wall_seconds,
            "{}: phase sum {sum:.4}s is less than half the wall time {:.4}s",
            w.name,
            w.wall_seconds
        );
    }
}
