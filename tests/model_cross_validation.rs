//! Cross-validation between the two §5 machine implementations.
//!
//! `RealisticMachine` (analytic, unbounded fetch queue) and `EventMachine`
//! (cycle-stepped, bounded queue with back-pressure) embody different
//! buffering assumptions, so cycle counts are not expected to match exactly
//! — but every *conclusion* the paper draws must be implementation
//! independent. These tests pin that down across the full workload suite.

use fetchvp_core::event::EventMachine;
use fetchvp_core::{BtbKind, FrontEnd, RealisticConfig, RealisticMachine, VpConfig};
use fetchvp_trace::{trace_program, Trace};
use fetchvp_workloads::{suite, WorkloadParams};

const TRACE_LEN: u64 = 25_000;

fn traces() -> Vec<(String, Trace)> {
    suite(&WorkloadParams::default())
        .into_iter()
        .map(|w| (w.name().to_string(), trace_program(w.program(), TRACE_LEN)))
        .collect()
}

fn fe(max_taken: Option<u32>, btb: BtbKind) -> FrontEnd {
    FrontEnd::Conventional { width: 40, max_taken, btb }
}

#[test]
fn both_models_retire_the_full_trace() {
    for (name, trace) in traces() {
        let cfg = RealisticConfig::paper(fe(Some(4), BtbKind::Perfect), VpConfig::None);
        let analytic = RealisticMachine::new(cfg).run(&trace);
        let event = EventMachine::new(cfg).run(&trace);
        assert_eq!(analytic.instructions, trace.len() as u64, "{name}");
        assert_eq!(event.instructions, trace.len() as u64, "{name}");
    }
}

#[test]
fn ipcs_agree_within_a_buffering_band() {
    // The bounded fetch queue costs the event model some throughput; the
    // analytic model is an upper bound of sorts. Require agreement within
    // a factor of two in both directions — a regression in either model
    // (e.g. an off-by-one in the window logic) blows far past this.
    for (name, trace) in traces() {
        for vp in [VpConfig::None, VpConfig::stride_infinite()] {
            let cfg = RealisticConfig::paper(fe(Some(4), BtbKind::Perfect), vp);
            let a = RealisticMachine::new(cfg).run(&trace).ipc();
            let e = EventMachine::new(cfg).run(&trace).ipc();
            let ratio = a / e;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{name} ({vp:?}): analytic {a:.2} vs event {e:.2} IPC"
            );
        }
    }
}

#[test]
fn value_prediction_wins_agree() {
    // Wherever the analytic model reports a clear VP win, the event model
    // must too (and vice versa for "no effect").
    for (name, trace) in traces() {
        let cfg_base = RealisticConfig::paper(fe(Some(4), BtbKind::Perfect), VpConfig::None);
        let cfg_vp =
            RealisticConfig::paper(fe(Some(4), BtbKind::Perfect), VpConfig::stride_infinite());
        let a = RealisticMachine::new(cfg_vp)
            .run(&trace)
            .speedup_over(&RealisticMachine::new(cfg_base).run(&trace));
        let e = EventMachine::new(cfg_vp)
            .run(&trace)
            .speedup_over(&EventMachine::new(cfg_base).run(&trace));
        if a > 0.15 {
            assert!(e > 0.05, "{name}: analytic +{a:.2} but event only +{e:.2}");
        }
        if a.abs() < 0.02 {
            assert!(e.abs() < 0.10, "{name}: analytic ~0 but event {e:.2}");
        }
    }
}

#[test]
fn bandwidth_trend_agrees() {
    // The headline trend — more taken branches per cycle, more VP gain —
    // holds in both implementations (suite average).
    let mut analytic = Vec::new();
    let mut event = Vec::new();
    for n in [Some(1u32), Some(4)] {
        let (mut a_sum, mut e_sum, mut count) = (0.0, 0.0, 0);
        for (_, trace) in traces() {
            let cfg_base = RealisticConfig::paper(fe(n, BtbKind::Perfect), VpConfig::None);
            let cfg_vp =
                RealisticConfig::paper(fe(n, BtbKind::Perfect), VpConfig::stride_infinite());
            a_sum += RealisticMachine::new(cfg_vp)
                .run(&trace)
                .speedup_over(&RealisticMachine::new(cfg_base).run(&trace));
            e_sum += EventMachine::new(cfg_vp)
                .run(&trace)
                .speedup_over(&EventMachine::new(cfg_base).run(&trace));
            count += 1;
        }
        analytic.push(a_sum / count as f64);
        event.push(e_sum / count as f64);
    }
    assert!(analytic[1] > analytic[0] + 0.10, "analytic trend: {analytic:?}");
    assert!(event[1] > event[0] + 0.10, "event trend: {event:?}");
}

#[test]
fn two_level_btb_costs_both_models() {
    for (name, trace) in traces() {
        let perfect = RealisticConfig::paper(fe(Some(4), BtbKind::Perfect), VpConfig::None);
        let real = RealisticConfig::paper(fe(Some(4), BtbKind::two_level_paper()), VpConfig::None);
        let a_cost = RealisticMachine::new(real).run(&trace).cycles as f64
            / RealisticMachine::new(perfect).run(&trace).cycles as f64;
        let e_cost = EventMachine::new(real).run(&trace).cycles as f64
            / EventMachine::new(perfect).run(&trace).cycles as f64;
        assert!(a_cost >= 0.999, "{name}: analytic BTB cost {a_cost:.3}");
        assert!(e_cost >= 0.999, "{name}: event BTB cost {e_cost:.3}");
    }
}
