//! Cross-configuration orderings that must hold on every workload: better
//! predictors, better branch prediction and more fetch bandwidth can only
//! help (within a small replay-penalty tolerance).

use fetchvp_core::{
    BtbKind, FrontEnd, IdealConfig, IdealMachine, RealisticConfig, RealisticMachine, VpConfig,
};
use fetchvp_fetch::TraceCacheConfig;
use fetchvp_predictor::BankedConfig;
use fetchvp_trace::{trace_program, Trace};
use fetchvp_workloads::{suite, WorkloadParams};

const TRACE_LEN: u64 = 25_000;

fn traces() -> Vec<(String, Trace)> {
    suite(&WorkloadParams::default())
        .into_iter()
        .map(|w| (w.name().to_string(), trace_program(w.program(), TRACE_LEN)))
        .collect()
}

fn ideal(trace: &Trace, fetch_rate: usize, vp: VpConfig) -> u64 {
    IdealMachine::new(IdealConfig { fetch_rate, vp, ..IdealConfig::default() }).run(trace).cycles
}

#[test]
fn perfect_vp_dominates_real_vp_dominates_plain_replay() {
    for (name, trace) in traces() {
        let base = ideal(&trace, 16, VpConfig::None);
        let stride = ideal(&trace, 16, VpConfig::stride_infinite());
        let perfect = ideal(&trace, 16, VpConfig::Perfect);
        assert!(perfect <= stride, "{name}: perfect {perfect} > stride {stride}");
        // A real predictor can lose a little to replay penalties, but never
        // more than a sliver.
        assert!(
            stride as f64 <= base as f64 * 1.02,
            "{name}: stride VP slower than baseline ({stride} vs {base})"
        );
    }
}

#[test]
fn more_fetch_bandwidth_never_hurts_the_ideal_machine() {
    for (name, trace) in traces() {
        let mut prev = u64::MAX;
        for rate in [4usize, 8, 16, 32, 40] {
            let cycles = ideal(&trace, rate, VpConfig::stride_infinite());
            assert!(cycles <= prev, "{name}: rate {rate} got slower");
            prev = cycles;
        }
    }
}

#[test]
fn perfect_btb_dominates_two_level_btb() {
    for (name, trace) in traces() {
        for max_taken in [Some(1u32), Some(4)] {
            let cycles = |btb| {
                let fe = FrontEnd::Conventional { width: 40, max_taken, btb };
                RealisticMachine::new(RealisticConfig::paper(fe, VpConfig::None)).run(&trace).cycles
            };
            assert!(
                cycles(BtbKind::Perfect) <= cycles(BtbKind::two_level_paper()),
                "{name} at n={max_taken:?}"
            );
        }
    }
}

#[test]
fn more_taken_branch_allowance_never_hurts() {
    for (name, trace) in traces() {
        let mut prev = u64::MAX;
        for max_taken in [Some(1u32), Some(2), Some(3), Some(4), None] {
            let fe = FrontEnd::Conventional { width: 40, max_taken, btb: BtbKind::Perfect };
            let cycles = RealisticMachine::new(RealisticConfig::paper(fe, VpConfig::Perfect))
                .run(&trace)
                .cycles;
            assert!(cycles <= prev, "{name}: n={max_taken:?} got slower");
            prev = cycles;
        }
    }
}

#[test]
fn more_prediction_banks_never_hurt() {
    for (name, trace) in traces() {
        let fe = FrontEnd::TraceCache { config: TraceCacheConfig::paper(), btb: BtbKind::Perfect };
        let mut prev_denied = u64::MAX;
        for banks in [1u32, 4, 16, 64] {
            let r = RealisticMachine::new(
                RealisticConfig::paper(fe, VpConfig::stride_infinite())
                    .with_banked(BankedConfig::new(banks)),
            )
            .run(&trace);
            let denied = r.banked_stats.expect("banked stats").denied;
            assert!(denied <= prev_denied, "{name}: {banks} banks denied more");
            prev_denied = denied;
        }
    }
}

#[test]
fn unconstrained_prediction_table_upper_bounds_the_banked_one() {
    for (name, trace) in traces() {
        let fe = FrontEnd::TraceCache { config: TraceCacheConfig::paper(), btb: BtbKind::Perfect };
        let unconstrained =
            RealisticMachine::new(RealisticConfig::paper(fe, VpConfig::stride_infinite()))
                .run(&trace);
        let banked = RealisticMachine::new(
            RealisticConfig::paper(fe, VpConfig::stride_infinite())
                .with_banked(BankedConfig::new(1)),
        )
        .run(&trace);
        // Denied predictions can only remove opportunity (modulo the same
        // small replay tolerance as above, since a denied wrong prediction
        // can accidentally help).
        assert!(
            banked.cycles as f64 >= unconstrained.cycles as f64 * 0.98,
            "{name}: banked-1 faster than unconstrained"
        );
    }
}
