//! Cross-crate property tests: randomized programs and schedules must
//! uphold the architectural invariants of every layer.

use fetchvp_core::sched::{Scheduler, VpDisposition};
use fetchvp_core::{IdealConfig, IdealMachine, VpConfig};
use fetchvp_isa::{AluOp, Cond, Instr, Program, ProgramBuilder, Reg};
use fetchvp_testutil::{for_cases, Rng};
use fetchvp_trace::{read_trace, trace_program, write_trace, BasicBlocks, Trace};

/// A random straight-line program over a handful of registers, closed with
/// a counted loop so it produces a trace of meaningful length.
fn random_program(rng: &mut Rng) -> Program {
    let body = rng.vec_with(1, 40, |rng| {
        let op = *rng.pick(&AluOp::ALL);
        let reg = |rng: &mut Rng| Reg::new(rng.range_u64(1, 8) as u8).expect("in range");
        let (dst, a, b) = (reg(rng), reg(rng), reg(rng));
        let imm = rng.range_i64(-16, 16);
        if imm % 2 == 0 {
            Instr::Alu { op, dst, a, b }
        } else {
            Instr::AluImm { op, dst, a, imm }
        }
    });
    let iters = rng.range_i64(2, 50);
    let mut b = ProgramBuilder::new("random");
    b.load_imm(Reg::R9, iters);
    let head = b.bind_label("head");
    for i in body {
        b.push(i);
    }
    b.alu_imm(AluOp::Sub, Reg::R9, Reg::R9, 1);
    b.branch(Cond::Ne, Reg::R9, Reg::R0, head);
    b.halt();
    b.build().expect("random program assembles")
}

/// The executor is deterministic and the trace is well-formed.
#[test]
fn traces_are_well_formed() {
    for_cases(48, |case, rng| {
        let program = random_program(rng);
        let a = trace_program(&program, 3_000);
        let b = trace_program(&program, 3_000);
        assert_eq!(a, b, "case {case}");
        for (i, rec) in a.iter().enumerate() {
            assert_eq!(rec.seq, i as u64, "case {case}");
            assert!(program.get(rec.pc).is_some(), "case {case}");
        }
        // Consecutive records follow the recorded control flow.
        for i in 1..a.len() {
            assert_eq!(a.slot(i - 1).next_pc(), a.slot(i).pc(), "case {case}");
        }
    });
}

/// Trace serialization round-trips bit-exactly.
#[test]
fn trace_io_round_trips() {
    for_cases(48, |case, rng| {
        let program = random_program(rng);
        let t = trace_program(&program, 1_000);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).expect("write to memory");
        let loaded = read_trace(buf.as_slice()).expect("read back");
        assert_eq!(t, loaded, "case {case}");
    });
}

/// Basic blocks tile the program and each holds at most one control
/// instruction, at its end.
#[test]
fn basic_blocks_tile() {
    for_cases(48, |case, rng| {
        let program = random_program(rng);
        let bbs = BasicBlocks::analyze(&program);
        let mut covered = 0u64;
        for block in bbs.blocks() {
            let (start, end) = (bbs.start(block), bbs.end(block));
            assert!(start < end, "case {case}");
            covered += end - start;
            for pc in start..end.saturating_sub(1) {
                assert!(!program.get(pc).unwrap().is_control(), "case {case}");
            }
        }
        assert_eq!(covered, program.len() as u64, "case {case}");
    });
}

/// The scheduler respects dataflow: a consumer never executes before an
/// unpredicted producer completes, and stage times are well-ordered.
#[test]
fn scheduler_respects_dataflow() {
    for_cases(48, |case, rng| {
        let program = random_program(rng);
        let fetch_rate = rng.range_usize(1, 40);
        let trace = trace_program(&program, 2_000);
        let mut sched = Scheduler::new(40, Some(fetch_rate));
        let mut last_write: [Option<u64>; 32] = [None; 32]; // complete times
        for rec in trace.view().slots() {
            let t = sched.schedule(rec, (rec.index() / fetch_rate) as u64, VpDisposition::None);
            assert!(t.dispatch < t.execute, "case {case}");
            assert_eq!(t.complete, t.execute + 1, "case {case}");
            for src in rec.srcs().into_iter().flatten() {
                if let Some(ready) = last_write[src.index()] {
                    assert!(
                        t.execute >= ready,
                        "case {case}: consumer at {} executed before producer completed at {}",
                        t.execute,
                        ready
                    );
                }
            }
            if let Some(dst) = rec.dst() {
                last_write[dst.index()] = Some(t.complete);
            }
        }
    });
}

/// Machine-level orderings hold on arbitrary programs: perfect VP is never
/// slower than no VP, and more fetch bandwidth never hurts.
#[test]
fn machine_orderings_hold() {
    for_cases(48, |case, rng| {
        let program = random_program(rng);
        let trace = trace_program(&program, 2_000);
        let cycles = |fetch_rate, vp| {
            IdealMachine::new(IdealConfig { fetch_rate, vp, ..IdealConfig::default() })
                .run(&trace)
                .cycles
        };
        assert!(cycles(16, VpConfig::Perfect) <= cycles(16, VpConfig::None), "case {case}");
        assert!(cycles(32, VpConfig::None) <= cycles(8, VpConfig::None), "case {case}");
        assert!(cycles(32, VpConfig::Perfect) <= cycles(8, VpConfig::Perfect), "case {case}");
    });
}

/// The dependence census agrees between the DFG analyzer and the machine,
/// for any program.
#[test]
fn dep_counts_agree() {
    for_cases(48, |case, rng| {
        let program = random_program(rng);
        let trace = trace_program(&program, 2_000);
        let machine = IdealMachine::new(IdealConfig {
            fetch_rate: 8,
            vp: VpConfig::stride_infinite(),
            ..IdealConfig::default()
        })
        .run(&trace);
        let dfg = fetchvp_dfg::analyze(&trace);
        assert_eq!(machine.deps.total, dfg.arcs, "case {case}");
    });
}

/// Non-random regression: an empty-bodied loop exercises the degenerate
/// paths of every property above.
#[test]
fn tight_loop_degenerate_case() {
    let mut b = ProgramBuilder::new("tight");
    b.load_imm(Reg::R9, 100);
    let head = b.bind_label("head");
    b.alu_imm(AluOp::Sub, Reg::R9, Reg::R9, 1);
    b.branch(Cond::Ne, Reg::R9, Reg::R0, head);
    b.halt();
    let program = b.build().unwrap();
    let trace: Trace = trace_program(&program, 10_000);
    assert_eq!(trace.len(), 1 + 100 * 2);
    let bbs = BasicBlocks::analyze(&program);
    assert_eq!(bbs.num_blocks(), 3);
}

/// The columnar trace representation round-trips exactly: rebuilding
/// `TraceColumns` from the record iterator and reading every slot back
/// reproduces the original records — accessors included — on all nine
/// workloads of the extended suite.
#[test]
fn trace_columns_round_trip_records() {
    use fetchvp_trace::{DynInstr, TraceColumns};
    use fetchvp_workloads::{extended_suite, WorkloadParams};

    for workload in extended_suite(&WorkloadParams::default()) {
        let trace = trace_program(workload.program(), 4_000);
        let records: Vec<DynInstr> = trace.iter().collect();
        let cols = TraceColumns::from_records(&records);
        assert_eq!(cols.len(), records.len(), "{}", workload.name());
        for (i, rec) in records.iter().enumerate() {
            let slot = cols.slot(i);
            assert_eq!(slot.to_record(), *rec, "{} slot {i}", workload.name());
            assert_eq!(slot.dst(), rec.dst(), "{} slot {i}", workload.name());
            assert_eq!(slot.srcs(), rec.srcs(), "{} slot {i}", workload.name());
            assert_eq!(slot.is_control(), rec.is_control(), "{} slot {i}", workload.name());
            assert_eq!(slot.is_cond_branch(), rec.is_cond_branch(), "{} slot {i}", workload.name());
            assert_eq!(slot.produces_value(), rec.produces_value(), "{} slot {i}", workload.name());
        }
        // The view iterator agrees with per-index access.
        for (i, slot) in cols.view().slots().enumerate() {
            assert_eq!(slot.index(), i, "{}", workload.name());
            assert_eq!(slot.to_record(), records[i], "{}", workload.name());
        }
    }
}
