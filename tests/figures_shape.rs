//! Shape assertions for every figure and table of the paper, at reduced
//! trace length. These are the headline claims the reproduction must hold.

use fetchvp_experiments::{
    fig3_1, fig3_3, fig3_4, fig3_5, fig5_1, fig5_2, fig5_3, table3_1, table3_2, usefulness,
    ExperimentConfig,
};

fn cfg() -> ExperimentConfig {
    ExperimentConfig { trace_len: 40_000, ..ExperimentConfig::default() }
}

#[test]
fn table3_1_lists_the_suite_with_plausible_statistics() {
    let r = table3_1::run(&cfg());
    assert_eq!(r.rows.len(), 8);
    for (name, _, instrs, taken, vp, run) in &r.rows {
        assert_eq!(*instrs, 40_000, "{name}");
        // Plausible dynamic characteristics for integer code.
        assert!((0.05..0.5).contains(taken), "{name}: taken rate {taken}");
        assert!((0.4..0.95).contains(vp), "{name}: value-producing {vp}");
        assert!((2.0..20.0).contains(run), "{name}: run length {run}");
    }
}

#[test]
fn figure3_1_fetch_bandwidth_gates_value_prediction() {
    let r = fig3_1::run(&cfg());
    let avg = r.averages();
    // §3.2: "When the instruction fetch rate is limited to up to 4
    // instructions per cycle the speedup is barely noticeable".
    assert!(avg[0].abs() < 0.05, "fetch-4 average {:.3}", avg[0]);
    // ... and it grows dramatically with bandwidth (paper: 8/33/70/80%).
    assert!(avg[4] > 0.35, "fetch-40 average {:.3}", avg[4]);
    for w in avg.windows(2) {
        assert!(w[1] >= w[0] - 0.03, "not monotone: {avg:?}");
    }
    // m88ksim and vortex are the outliers (112% / 83% at fetch-16).
    let at16 = |n: &str| r.speedups_of(n).unwrap()[2];
    for other in ["go", "gcc", "compress", "li", "ijpeg", "perl"] {
        assert!(at16("m88ksim") > at16(other), "m88ksim vs {other}");
        assert!(at16("vortex") > at16(other), "vortex vs {other}");
    }
}

#[test]
fn table3_2_reproduces_the_pipeline_walkthrough() {
    let r = table3_2::run();
    // The exact schedule of the paper's Table 3.2.
    for s in &r.stages[..4] {
        assert_eq!((s.fetch, s.decode, s.execute, s.commit), (1, 2, 3, 4));
    }
    for s in &r.stages[4..8] {
        assert_eq!((s.fetch, s.decode, s.execute, s.commit), (2, 3, 4, 5));
    }
}

#[test]
fn figure3_3_average_did_exceeds_current_fetch_widths() {
    let r = fig3_3::run(&cfg());
    for (name, did) in &r.rows {
        assert!(*did > 4.0, "{name}: avg DID {did:.2}");
    }
}

#[test]
fn figure3_4_most_dependencies_are_long() {
    let r = fig3_4::run(&cfg());
    // §3.3: "approximately 60% (on average) of the true-data dependencies
    // span across instructions in a greater or equal distance of 4".
    let avg = r.average_long_fraction();
    assert!((0.40..0.80).contains(&avg), "average DID>=4 fraction {avg:.2}");
}

#[test]
fn figure3_5_predictability_profile_matches_the_paper() {
    let r = fig3_5::run(&cfg());
    // §4.1: m88ksim ~40% and vortex >55% predictable-long; others 20-25%
    // (we accept a wider band for the synthetic stand-ins).
    let long = |n: &str| r.row_of(n).unwrap().predictable_long;
    assert!((0.30..0.55).contains(&long("m88ksim")), "m88ksim {:.2}", long("m88ksim"));
    assert!(long("vortex") > 0.55, "vortex {:.2}", long("vortex"));
    for other in ["go", "gcc", "compress", "li", "ijpeg", "perl"] {
        assert!(long(other) < long("m88ksim"), "{other} exceeds m88ksim");
    }
    // §4.1: "only 23% (on average) of the data dependencies are both
    // predictable and span a distance of less than 4 instructions".
    let short = r.average_predictable_short();
    assert!((0.05..0.35).contains(&short), "predictable-short average {short:.2}");
}

#[test]
fn figure5_1_taken_branch_bandwidth_gates_value_prediction() {
    let r = fig5_1::run(&cfg());
    let avg = r.averages();
    // §5: "when we allow fetching up to 1 taken branch each cycle the
    // average speedup is barely noticeable (approximately 3%)".
    assert!(avg[0].abs() < 0.06, "n=1 average {:.3}", avg[0]);
    // "...allowing up to 4 taken branches per cycle the average speedup
    // becomes nearly 50%".
    assert!(avg[3] > 0.30, "n=4 average {:.3}", avg[3]);
    for w in avg.windows(2) {
        assert!(w[1] >= w[0] - 0.03, "not monotone: {avg:?}");
    }
}

#[test]
fn figure5_2_realistic_btb_loses_part_of_the_gain() {
    let c = cfg();
    let ideal = fig5_1::run(&c);
    let real = fig5_2::run(&c);
    let (ia, ra) = (ideal.averages(), real.averages());
    // §5: n=1 still ~3%; and at n=4 the speedup drops substantially
    // relative to the ideal BTB ("by approximately 30%").
    assert!(ra[0].abs() < 0.06, "n=1 average {:.3}", ra[0]);
    assert!(ra[3] > 0.10, "n=4 average {:.3}", ra[3]);
    assert!(
        ra[3] < ia[3],
        "2-level BTB at n=4 ({:.2}) should trail the ideal BTB ({:.2})",
        ra[3],
        ia[3]
    );
}

#[test]
fn figure5_3_trace_cache_value_prediction() {
    let r = fig5_3::run(&cfg());
    let (two_level, ideal) = r.averages();
    // §5: "when using a trace cache, value prediction itself can increase
    // the performance by more than 10% (on average)" [2-level BTB], and
    // the ideal-BTB bound is higher.
    assert!(two_level > 0.10, "TC+2level average {two_level:.3}");
    assert!(ideal > two_level, "TC+ideal {ideal:.3} vs TC+2level {two_level:.3}");
}

#[test]
fn usefulness_breakdown_follows_fetch_bandwidth() {
    let r = usefulness::run(&cfg());
    assert_eq!(r.rows.len(), 9);
    // §3.3's mechanism: bandwidth converts correct predictions from
    // useless to useful, on average and for every benchmark.
    let (narrow, wide) = (r.average_useful_narrow(), r.average_useful_wide());
    assert!(wide > narrow, "fetch-40 useful {wide:.3} <= fetch-4 useful {narrow:.3}");
    for (name, row) in &r.rows {
        assert!(row.correct > 0, "{name}: no correct predictions");
        assert!(
            row.useful_wide >= row.useful_narrow - 0.03,
            "{name}: usefulness fell with bandwidth ({:.3} -> {:.3})",
            row.useful_narrow,
            row.useful_wide
        );
    }
}
