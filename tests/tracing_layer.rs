//! Integration tests for the observability layer: the event ring, the
//! `FETCHVP_LOG` filter, the Chrome-trace exporter (via the `trace-viz`
//! runner), determinism across job counts, and the usefulness-attribution
//! identity over the whole benchmark suite.

use fetchvp_core::{IdealConfig, IdealMachine, VpConfig};
use fetchvp_experiments::{traceviz, ExperimentConfig, Sweep};
use fetchvp_metrics::Json;
use fetchvp_tracing::{Event, EventSink, Filter, Lane, Level, Ring};

fn quick() -> ExperimentConfig {
    ExperimentConfig { trace_len: 3_000, ..ExperimentConfig::default() }
}

#[test]
fn ring_overflow_drops_oldest_and_counts() {
    let mut ring = Ring::new(4);
    for ts in 0..10u64 {
        ring.record(Event::instant(Lane::Fetch, ts, "tick", ts, 0));
    }
    assert_eq!(ring.dropped(), 6);
    let kept: Vec<u64> = ring.drain().iter().map(|e| e.ts).collect();
    assert_eq!(kept, [6, 7, 8, 9], "ring must keep the newest events in order");
}

#[test]
fn log_filter_grammar() {
    let f = Filter::parse("warn,server=debug,scheduler=off");
    assert!(f.enabled("anything", Level::Warn));
    assert!(!f.enabled("anything", Level::Info));
    assert!(f.enabled("server.http", Level::Debug));
    assert!(!f.enabled("server.http", Level::Trace));
    // `server` must not prefix-match `serverless`-style targets...
    assert!(!f.enabled("serverless", Level::Debug));
    // ...and an `off` directive silences even errors for its target.
    assert!(!f.enabled("scheduler", Level::Error));
    assert!(!Filter::parse("off").enabled("anything", Level::Error));
}

#[test]
fn trace_viz_emits_valid_chrome_trace_json() {
    let viz = traceviz::run(&quick(), "compress", None).expect("known workload");
    let doc = Json::parse(&viz.json).expect("output must be valid JSON");
    let Some(Json::Array(events)) = doc.get("traceEvents") else {
        panic!("missing traceEvents array");
    };
    assert!(!events.is_empty());

    // Every event carries the mandatory trace-event fields, and within one
    // thread (lane) the timestamps are monotonically non-decreasing.
    let mut last_ts: std::collections::BTreeMap<u64, u64> = Default::default();
    let mut phases = std::collections::BTreeSet::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph field");
        phases.insert(ph.to_string());
        if ph == "M" {
            continue; // metadata records have no timestamp
        }
        let tid = ev.get("tid").and_then(Json::as_u64).expect("tid field");
        let ts = ev.get("ts").and_then(Json::as_u64).expect("ts field");
        let prev = last_ts.insert(tid, ts).unwrap_or(0);
        assert!(ts >= prev, "tid {tid}: ts {ts} went backwards from {prev}");
    }
    for required in ["M", "X", "i", "C"] {
        assert!(phases.contains(required), "no `{required}` events in {phases:?}");
    }
}

#[test]
fn trace_viz_output_is_identical_across_job_counts() {
    let cfg = quick();
    let viz1 = traceviz::run_with(&Sweep::with_jobs(&cfg, 1), "ijpeg", Some((0, 1_000)))
        .expect("jobs=1 run");
    let viz8 = traceviz::run_with(&Sweep::with_jobs(&cfg, 8), "ijpeg", Some((0, 1_000)))
        .expect("jobs=8 run");
    assert_eq!(viz1.json, viz8.json, "trace-viz JSON must be byte-identical across --jobs");
    assert_eq!(viz1.dropped, viz8.dropped);
}

#[test]
fn usefulness_identity_holds_on_every_workload() {
    // The attribution invariant: every correct prediction is classified
    // exactly once, so useful + useless == predictor.correct — on all nine
    // workloads, at both fetch extremes.
    let sweep = Sweep::serial(&quick());
    for (index, workload) in sweep.cache().workloads(true).iter().enumerate() {
        let trace = sweep.cache().trace(index);
        for fetch_rate in [4, 40] {
            let r = IdealMachine::new(IdealConfig {
                fetch_rate,
                vp: VpConfig::stride_infinite(),
                ..IdealConfig::default()
            })
            .run(&trace);
            let correct = r.vp_stats.as_ref().expect("vp enabled").correct;
            assert_eq!(
                r.usefulness.useful + r.usefulness.useless,
                correct,
                "{} @ fetch-{fetch_rate}: attribution must cover every correct prediction",
                workload.name()
            );
            let metrics = r.metrics();
            assert_eq!(metrics.get_counter("predictor.useful"), Some(r.usefulness.useful));
            assert_eq!(metrics.get_counter("predictor.useless"), Some(r.usefulness.useless));
        }
    }
}
