//! End-to-end tests for `GET /jobs/<id>/events`: a real daemon on an
//! ephemeral port, streamed over raw `TcpStream`s through the HTTP/1.1
//! chunked-transfer wire format — including the adversarial clients a
//! public endpoint meets in practice.
//!
//! The contracts under test:
//!
//! 1. **Live monotonicity** — a streamed job's `instructions_done`
//!    values never decrease in seq order, and the stream ends with the
//!    terminal event matching the polled job document.
//! 2. **Slow readers** — a reader that falls behind a tiny ring loses
//!    the *oldest* events, is told how many via a `{"dropped": n}`
//!    notice, and still receives the terminal event.
//! 3. **Mid-stream disconnects** — a client hanging up mid-stream leaves
//!    the daemon healthy: the job still completes and new work runs.
//! 4. **Terminal replay** — streaming an already-finished job replays
//!    the retained ring and closes immediately.
//! 5. **Cache hits and bad ids** — a result-cache hit mints no job, so
//!    there is nothing to stream: unknown ids answer a plain `404`,
//!    malformed ids a `400` (never a hung chunked response).
//! 6. *(`--ignored`, release-only)* **Out-of-core streaming** — a
//!    20M-instruction machine sweep replayed chunk-by-chunk from disk
//!    streams `store_chunk` progress and returns a result byte-identical
//!    to the same spec run in-process.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fetchvp_experiments::{JobSpec, Sweep};
use fetchvp_metrics::Json;
use fetchvp_server::{Server, ServerConfig};
use fetchvp_tracestore::TraceDir;

/// A parsed HTTP response: status code, headers, body.
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    fn json(&self) -> Json {
        Json::parse(&self.body).unwrap_or_else(|e| panic!("bad JSON body: {e}\n{}", self.body))
    }
}

/// One HTTP/1.1 exchange over a fresh connection.
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    stream.set_write_timeout(Some(Duration::from_secs(60))).unwrap();
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write request head");
    stream.write_all(body.as_bytes()).expect("write request body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    parse_reply(&raw)
}

fn parse_reply(raw: &[u8]) -> Reply {
    let text = String::from_utf8(raw.to_vec()).expect("response is UTF-8");
    let (head, body) = text.split_once("\r\n\r\n").expect("response has a blank line");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {status_line}"));
    let headers = lines
        .filter_map(|line| line.split_once(": "))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    Reply { status, headers, body: body.to_string() }
}

/// What a full read of one `GET /jobs/<id>/events` stream produced.
struct StreamedEvents {
    /// Progress events (lines carrying a `seq` field), oldest first.
    events: Vec<Json>,
    /// Total events lost to drop-oldest, summed over `{"dropped": n}`
    /// notices.
    dropped: u64,
    /// Heartbeat lines seen (`{"heartbeat": true}`).
    heartbeats: u64,
}

/// Streams a job's events to EOF, dechunking the HTTP/1.1 chunked
/// transfer. `pause` inserts a client-side stall between reads (the
/// slow-reader simulation); `read_buf` caps how much is pulled per read.
fn stream_events(
    addr: SocketAddr,
    id: u64,
    pause: Option<Duration>,
    read_buf: usize,
) -> StreamedEvents {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let head = format!("GET /jobs/{id}/events HTTP/1.1\r\nHost: {addr}\r\n\r\n");
    stream.write_all(head.as_bytes()).expect("write request head");
    let mut raw = Vec::new();
    let mut buf = vec![0u8; read_buf.max(1)];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(e) => panic!("stream read failed after {} bytes: {e}", raw.len()),
        }
        if let Some(pause) = pause {
            std::thread::sleep(pause);
        }
    }
    let text = String::from_utf8(raw).expect("stream is UTF-8");
    let (head, body) = text.split_once("\r\n\r\n").expect("stream has a header block");
    assert!(head.starts_with("HTTP/1.1 200"), "stream must answer 200: {head}");
    assert!(
        head.to_ascii_lowercase().contains("transfer-encoding: chunked"),
        "stream must use chunked transfer: {head}"
    );
    assert!(
        head.to_ascii_lowercase().contains("content-type: application/x-ndjson"),
        "stream must be NDJSON: {head}"
    );
    parse_ndjson(&dechunk(body))
}

/// Reassembles an HTTP/1.1 chunked body (`<hexlen>\r\n<payload>\r\n`...
/// `0\r\n\r\n`) into the payload bytes. Panics on framing errors — a
/// malformed stream is exactly what these tests exist to catch.
fn dechunk(mut body: &str) -> String {
    let mut out = String::new();
    loop {
        let (len_line, rest) = body.split_once("\r\n").expect("chunk length line");
        let len = usize::from_str_radix(len_line.trim(), 16)
            .unwrap_or_else(|_| panic!("bad chunk length line: {len_line:?}"));
        if len == 0 {
            return out;
        }
        assert!(rest.len() >= len + 2, "truncated chunk: want {len} bytes, have {}", rest.len());
        out.push_str(&rest[..len]);
        assert_eq!(&rest[len..len + 2], "\r\n", "chunk payload must end with CRLF");
        body = &rest[len + 2..];
    }
}

/// Splits a dechunked NDJSON payload into events, drop notices and
/// heartbeats, asserting every line parses with our own `Json`.
fn parse_ndjson(payload: &str) -> StreamedEvents {
    let mut events = Vec::new();
    let mut dropped = 0;
    let mut heartbeats = 0;
    for line in payload.lines().filter(|l| !l.is_empty()) {
        let doc = Json::parse(line).unwrap_or_else(|e| panic!("bad NDJSON line: {e}\n{line}"));
        if let Some(n) = doc.get("dropped").and_then(Json::as_u64) {
            dropped += n;
        } else if doc.get("heartbeat").is_some() {
            heartbeats += 1;
        } else {
            assert!(doc.get("seq").is_some(), "unknown stream line shape: {line}");
            events.push(doc);
        }
    }
    StreamedEvents { events, dropped, heartbeats }
}

/// Asserts the invariants every completed event stream must satisfy:
/// seqs strictly increase, `instructions_done` never decreases, and the
/// final event is the `done` terminal.
fn assert_stream_invariants(streamed: &StreamedEvents) {
    assert!(!streamed.events.is_empty(), "a completed job streams at least its terminal event");
    let seqs: Vec<u64> =
        streamed.events.iter().map(|e| e.get("seq").and_then(Json::as_u64).unwrap()).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seqs must strictly increase: {seqs:?}");
    let done: Vec<u64> = streamed
        .events
        .iter()
        .map(|e| e.get("instructions_done").and_then(Json::as_u64).unwrap())
        .collect();
    assert!(
        done.windows(2).all(|w| w[0] <= w[1]),
        "instructions_done must be monotone in seq order: {done:?}"
    );
    let last = streamed.events.last().unwrap();
    assert_eq!(
        last.get("phase").and_then(Json::as_str),
        Some("done"),
        "stream must end with the terminal event"
    );
}

/// Polls `GET /jobs/<id>` until the job reaches a terminal status.
fn wait_for_job(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let reply = request(addr, "GET", &format!("/jobs/{id}"), None);
        assert_eq!(reply.status, 200, "job {id} lookup failed: {}", reply.body);
        let doc = reply.json();
        let status = doc.get("status").and_then(Json::as_str).expect("status field").to_string();
        if status == "done" || status == "failed" {
            return doc;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in `{status}`");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Binds a server on an ephemeral loopback port and runs it on a thread.
fn start(config: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServerConfig { addr: "127.0.0.1:0".to_string(), ..config })
        .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let reply = request(addr, "POST", "/shutdown", None);
    assert_eq!(reply.status, 200, "shutdown refused: {}", reply.body);
    handle.join().expect("server thread").expect("server run() returned an error");
}

fn submit(addr: SocketAddr, spec: &str) -> u64 {
    let reply = request(addr, "POST", "/run", Some(spec));
    assert_eq!(reply.status, 202, "submit rejected: {}", reply.body);
    reply.json().get("job").and_then(Json::as_u64).expect("job id")
}

#[test]
fn streamed_progress_is_monotone_and_ends_with_the_polled_result() {
    let (addr, handle) =
        start(ServerConfig { workers: 1, queue_depth: 8, ..ServerConfig::default() });
    let id = submit(addr, r#"{"experiment": "bench", "trace_len": 60000, "seed": 3}"#);

    // Attach while the job runs (or replays if it finished first — the
    // invariants hold either way) and follow it to the terminal event.
    let streamed = stream_events(addr, id, None, 4096);
    assert_stream_invariants(&streamed);

    // The terminal event agrees with the polled document: same job, done,
    // 100% of the instructions the server reports.
    let last = streamed.events.last().unwrap();
    assert_eq!(last.get("job").and_then(Json::as_u64), Some(id));
    let doc = wait_for_job(addr, id);
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(doc.get_path("progress.phase").and_then(Json::as_str), Some("done"));
    assert_eq!(doc.get_path("progress.percent").and_then(Json::as_u64), Some(100));
    assert_eq!(
        last.get("instructions_total").and_then(Json::as_u64),
        doc.get_path("progress.instructions_total").and_then(Json::as_u64),
        "stream and poll views disagree about the job's size"
    );

    shutdown(addr, handle);
}

#[test]
fn slow_readers_lose_oldest_events_but_keep_the_terminal_one() {
    // A two-event ring: any job that emits more than two events between
    // stream pumps overflows it, so a (deliberately slow) reader must see
    // a drop notice — and still the terminal event, which drop-oldest
    // never evicts.
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        queue_depth: 8,
        progress_ring_events: 2,
        ..ServerConfig::default()
    });
    let id = submit(addr, r#"{"experiment": "bench", "trace_len": 2000, "seed": 5}"#);
    wait_for_job(addr, id);

    let streamed = stream_events(addr, id, Some(Duration::from_millis(25)), 256);
    assert!(
        streamed.dropped > 0,
        "a 2-event ring must drop events from a multi-sweep job \
         (got {} events, 0 dropped)",
        streamed.events.len()
    );
    assert!(streamed.events.len() <= 2, "the ring retains at most its capacity");
    assert_eq!(
        streamed.events.last().unwrap().get("phase").and_then(Json::as_str),
        Some("done"),
        "the terminal event survives any overflow"
    );

    shutdown(addr, handle);
}

#[test]
fn mid_stream_disconnects_leave_the_daemon_healthy() {
    let (addr, handle) =
        start(ServerConfig { workers: 1, queue_depth: 8, ..ServerConfig::default() });
    let id = submit(addr, r#"{"experiment": "bench", "trace_len": 200000, "seed": 7}"#);

    // Connect, read a handful of bytes, hang up mid-stream.
    {
        let mut stream = TcpStream::connect(addr).expect("connect to server");
        stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        let head = format!("GET /jobs/{id}/events HTTP/1.1\r\nHost: {addr}\r\n\r\n");
        stream.write_all(head.as_bytes()).expect("write request head");
        let mut buf = [0u8; 64];
        let n = stream.read(&mut buf).expect("read the start of the stream");
        assert!(n > 0, "server must start answering before we hang up");
        // Dropping the TcpStream closes the socket with the stream live.
    }

    // The abandoned job still completes, and the daemon serves new work.
    let doc = wait_for_job(addr, id);
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(request(addr, "GET", "/healthz", None).status, 200);
    let id2 = submit(addr, r#"{"experiment": "bench", "trace_len": 2000, "seed": 8}"#);
    let streamed = stream_events(addr, id2, None, 4096);
    assert_stream_invariants(&streamed);

    shutdown(addr, handle);
}

#[test]
fn terminal_jobs_replay_their_ring_and_close_immediately() {
    let (addr, handle) =
        start(ServerConfig { workers: 1, queue_depth: 8, ..ServerConfig::default() });
    let id = submit(addr, r#"{"experiment": "table3-1", "trace_len": 1000, "seed": 9}"#);
    wait_for_job(addr, id);

    // The job is long done: the stream replays the (default, ample) ring
    // from the beginning and EOFs without waiting on heartbeats.
    let started = Instant::now();
    let streamed = stream_events(addr, id, None, 4096);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "a terminal job's stream must replay and close, not linger ({:?})",
        started.elapsed()
    );
    assert_stream_invariants(&streamed);
    assert_eq!(streamed.dropped, 0, "the default ring retains a small job's whole history");
    assert_eq!(streamed.heartbeats, 0, "no heartbeats in an immediate replay");
    assert_eq!(
        streamed.events.first().unwrap().get("phase").and_then(Json::as_str),
        Some("queued"),
        "the replay starts from the job's first lifecycle event"
    );

    shutdown(addr, handle);
}

#[test]
fn cache_hits_mint_no_job_and_bad_ids_answer_plain_errors() {
    let (addr, handle) =
        start(ServerConfig { workers: 1, queue_depth: 8, ..ServerConfig::default() });
    let spec = r#"{"experiment": "table3-1", "trace_len": 1000, "seed": 11}"#;
    let id = submit(addr, spec);
    wait_for_job(addr, id);

    // The second identical POST is a result-cache hit: answered inline,
    // no job record — so there is no id to stream.
    let warm = request(addr, "POST", "/run", Some(spec));
    assert_eq!(warm.status, 200, "cache hit answers inline: {}", warm.body);
    assert!(warm.json().get("job").is_none(), "cache hits must not mint a job id");

    // Ids that were never minted 404; malformed ids 400. Both are plain
    // framed responses (Content-Length + Connection: close), never a
    // chunked stream a client would wait on.
    for (path, expected) in [
        (format!("/jobs/{}/events", id + 1000), 404),
        ("/jobs/not-a-number/events".to_string(), 400),
    ] {
        let reply = request(addr, "GET", &path, None);
        assert_eq!(reply.status, expected, "{path}");
        assert_eq!(reply.header("Connection"), Some("close"), "{path}");
        assert!(reply.header("Content-Length").is_some(), "{path} must be length-framed");
        assert!(reply.header("Transfer-Encoding").is_none(), "{path} must not chunk");
    }

    shutdown(addr, handle);
}

/// The flagship e2e from the issue: a 20M-instruction machine sweep —
/// strictly out-of-core (20M > the 8M in-memory ceiling) — streamed
/// live. `instructions_done` climbs monotonically, on-disk chunk indices
/// appear in the events, the terminal event matches the polled result,
/// and the served result is byte-identical to the same spec run
/// in-process against the same trace directory.
///
/// Ignored by default: it needs release-build speed and ~1 GiB of trace
/// data. CI runs it explicitly (see `scripts/ci.sh`), reusing the warm
/// trace directory of the out-of-core smoke via `FETCHVP_E2E_TRACE_DIR`.
#[test]
#[ignore = "release-scale: run via scripts/ci.sh or with --ignored and FETCHVP_E2E_TRACE_DIR"]
fn out_of_core_sweep_streams_store_chunks_and_matches_in_process() {
    let (dir, scratch) = match std::env::var_os("FETCHVP_E2E_TRACE_DIR") {
        Some(dir) => (std::path::PathBuf::from(dir), false),
        None => {
            let dir =
                std::env::temp_dir().join(format!("fetchvp-stream-e2e-{}", std::process::id()));
            (dir, true)
        }
    };
    let spec_text = r#"{"experiment": "usefulness", "trace_len": 20000000}"#;

    let (addr, handle) = start(ServerConfig {
        workers: 1,
        queue_depth: 4,
        trace_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let id = submit(addr, spec_text);
    let streamed = stream_events(addr, id, None, 16 * 1024);
    assert_stream_invariants(&streamed);

    // Live progress, not just a terminal blip: distinct intermediate
    // instruction counts, and out-of-core replay visible as nonzero
    // on-disk chunk indices.
    let distinct: std::collections::BTreeSet<u64> = streamed
        .events
        .iter()
        .map(|e| e.get("instructions_done").and_then(Json::as_u64).unwrap())
        .collect();
    assert!(
        distinct.len() >= 3,
        "a 20M-instruction sweep must stream intermediate progress (saw {distinct:?})"
    );
    assert!(
        streamed
            .events
            .iter()
            .any(|e| e.get("store_chunk").and_then(Json::as_u64).unwrap_or(0) > 0),
        "out-of-core replay must report on-disk chunk indices"
    );

    // The terminal event agrees with the polled document...
    let doc = wait_for_job(addr, id);
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
    let last = streamed.events.last().unwrap();
    assert_eq!(
        last.get("instructions_done").and_then(Json::as_u64),
        doc.get_path("progress.instructions_done").and_then(Json::as_u64)
    );
    assert_eq!(doc.get_path("progress.percent").and_then(Json::as_u64), Some(100));
    let served = doc.get("result").expect("done job has a result").to_json();
    shutdown(addr, handle);

    // ...and the served result is byte-identical to an in-process run
    // against the same (now warm) trace directory.
    let spec = JobSpec::from_json_with_limits(&Json::parse(spec_text).unwrap(), true).unwrap();
    let sweep =
        Sweep::with_trace_dir(&spec.config(), Some(Arc::new(TraceDir::new(dir.clone()))), 1);
    let oracle = spec.run(&sweep).result.to_json();
    assert_eq!(served, oracle, "served result must be byte-identical to the in-process run");

    if scratch {
        let _ = std::fs::remove_dir_all(&dir);
    }
}
