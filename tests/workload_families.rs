//! Workload-family and fuzzing-harness properties: the nine legacy
//! workloads are exact (byte-identical) points of their families, knob
//! coordinates actually move the generated trace, repro tuples round-trip
//! through their printed form, the fuzzer is deterministic, and a seeded
//! bug injected behind the scheduler's runner seam is caught and shrunk
//! to a small replayable tuple that still fails.

use fetchvp_core::{MachineConfig, MachineResult};
use fetchvp_experiments::fuzz::{self, BatchRunner, CaseRunner, CaseSpec, FuzzOptions};
use fetchvp_testutil::for_cases;
use fetchvp_trace::{trace_program, write_trace, Trace};
use fetchvp_workloads::{extended_suite, FamilyPoint, WorkloadParams};

/// The trace's on-disk byte surface — the identity the figures depend on.
fn trace_bytes(trace: &Trace) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_trace(trace, &mut bytes).expect("write to Vec cannot fail");
    bytes
}

const LEGACY_LEN: u64 = 20_000;

#[test]
fn every_legacy_workload_is_an_exact_family_point() {
    let params = WorkloadParams::default();
    for w in extended_suite(&params) {
        let point = FamilyPoint::legacy(w.name())
            .unwrap_or_else(|| panic!("{}: no family for legacy workload", w.name()));
        let legacy = trace_program(w.program(), LEGACY_LEN);
        let family = trace_program(&point.program(), LEGACY_LEN);
        assert_eq!(
            trace_bytes(&legacy),
            trace_bytes(&family),
            "{}: family origin drifted from the legacy workload",
            w.name()
        );
    }
}

#[test]
fn knob_coordinates_move_the_trace() {
    const NAMES: [&str; 9] =
        ["go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl", "vortex", "mgrid"];
    for_cases(18, |case, rng| {
        let name = NAMES[case % NAMES.len()];
        let mut point = FamilyPoint::legacy(name).expect("legacy point");
        // Each coordinate sits far enough from the origin to quantize to
        // at least one emitted instruction.
        point.knobs.did = 1.0 + 3.0 * rng.unit_f64();
        point.knobs.mix_stride = 0.5 + 0.5 * rng.unit_f64();
        point.knobs.branch_entropy = rng.unit_f64();
        let origin =
            trace_program(&FamilyPoint::legacy(name).expect("legacy point").program(), 6_000);
        let moved = trace_program(&point.program(), 6_000);
        assert_ne!(
            trace_bytes(&origin),
            trace_bytes(&moved),
            "case {case}: {name}: non-origin knobs left the trace unchanged"
        );
    });
}

#[test]
fn repro_tuples_round_trip_through_their_printed_form() {
    for_cases(64, |case, rng| {
        let spec = CaseSpec::from_seed(rng.next_u64(), 60_000);
        let printed = spec.to_string();
        let reparsed = CaseSpec::parse(&printed)
            .unwrap_or_else(|e| panic!("case {case}: `{printed}` does not parse: {e}"));
        assert_eq!(reparsed, spec, "case {case}: `{printed}` re-parsed differently");
    });
}

#[test]
fn fuzzing_is_deterministic() {
    let options = FuzzOptions { cases: 8, seed: 7, max_len: 4_000 };
    let first = fuzz::run(&options);
    let second = fuzz::run(&options);
    assert!(first.passed(), "{}", first.render());
    assert_eq!(first.render(), second.render());
    assert_eq!(first.instructions, second.instructions);
}

/// A seeded scheduler bug behind the runner seam: the wide ideal
/// machine's cycle count is silently inflated, so ideal no longer
/// dominates the realistic machine at equal width (invariant I1).
struct InflatedIdealCycles;

impl CaseRunner for InflatedIdealCycles {
    fn run(&self, trace: &Trace, configs: &[MachineConfig]) -> Vec<MachineResult> {
        let mut results = BatchRunner.run(trace, configs);
        results[0].cycles = results[0].cycles.saturating_mul(1_000);
        results
    }
}

/// A second seeded bug: one correct prediction loses its usefulness
/// attribution, breaking `useful + useless == correct` (invariant I2).
struct DroppedAttribution;

impl CaseRunner for DroppedAttribution {
    fn run(&self, trace: &Trace, configs: &[MachineConfig]) -> Vec<MachineResult> {
        let mut results = BatchRunner.run(trace, configs);
        for r in &mut results {
            if r.vp_stats.is_some() && r.usefulness.useful > 0 {
                r.usefulness.useful -= 1;
                break;
            }
        }
        results
    }
}

#[test]
fn injected_scheduler_bug_is_caught_shrunk_and_replayable() {
    let options = FuzzOptions { cases: 4, seed: 7, max_len: 60_000 };
    let report = fuzz::run_with(&InflatedIdealCycles, &options);
    assert!(!report.passed(), "the injected bug went undetected");
    for failure in &report.failures {
        assert!(failure.invariant.contains("I1"), "wrong invariant: {}", failure.invariant);
        // The printed tuple shrinks to a small case and round-trips.
        assert!(
            failure.shrunk.len <= 10_000,
            "shrunk case is still {} instructions",
            failure.shrunk.len
        );
        assert!(failure.shrunk.len >= fuzz::MIN_LEN);
        let printed = failure.shrunk.to_string();
        let reparsed = CaseSpec::parse(&printed)
            .unwrap_or_else(|e| panic!("shrunk tuple `{printed}` does not parse: {e}"));
        assert_eq!(reparsed, failure.shrunk);
        // The shrinker's output still fails the original invariant under
        // the buggy runner, and passes once the bug is gone.
        let message = fuzz::replay_with(&InflatedIdealCycles, &reparsed)
            .expect("shrunk tuple no longer fails under the buggy runner");
        assert!(message.contains("I1"), "shrunk tuple fails differently: {message}");
        assert!(
            fuzz::replay(&reparsed).is_none(),
            "shrunk tuple fails even on the production runner"
        );
    }
}

#[test]
fn dropped_usefulness_attribution_is_caught() {
    let options = FuzzOptions { cases: 2, seed: 7, max_len: 8_000 };
    let report = fuzz::run_with(&DroppedAttribution, &options);
    assert!(!report.passed(), "the dropped attribution went undetected");
    assert!(report.failures.iter().all(|f| f.invariant.contains("I2")));
}
