//! End-to-end integration across every crate: workload generation →
//! functional execution → dataflow analysis → both machine models.

use fetchvp_core::{
    BtbKind, FrontEnd, IdealConfig, IdealMachine, RealisticConfig, RealisticMachine, VpConfig,
};
use fetchvp_dfg::analyze;
use fetchvp_fetch::TraceCacheConfig;
use fetchvp_predictor::BankedConfig;
use fetchvp_trace::{trace_program, BasicBlocks};
use fetchvp_workloads::{suite, WorkloadParams};

const TRACE_LEN: u64 = 30_000;

#[test]
fn every_workload_flows_through_the_whole_stack() {
    for workload in suite(&WorkloadParams::default()) {
        let trace = trace_program(workload.program(), TRACE_LEN);
        assert_eq!(trace.len() as u64, TRACE_LEN, "{}", workload.name());

        // Static analysis applies to every program.
        let bbs = BasicBlocks::analyze(workload.program());
        assert!(bbs.num_blocks() > 1, "{}", workload.name());

        // DFG analysis: every workload has arcs, with DID >= 1 by
        // construction, and the predictability classes partition the arcs.
        let a = analyze(&trace);
        assert!(a.arcs > 1_000, "{}", workload.name());
        assert_eq!(a.histogram.total(), a.arcs);
        assert_eq!(a.predictability.total(), a.arcs, "{}", workload.name());

        // Ideal machine: both modes retire the full trace.
        let base = IdealMachine::new(IdealConfig::default()).run(&trace);
        let vp = IdealMachine::new(IdealConfig {
            vp: VpConfig::stride_infinite(),
            ..IdealConfig::default()
        })
        .run(&trace);
        assert_eq!(base.instructions, TRACE_LEN);
        assert_eq!(vp.instructions, TRACE_LEN);

        // Realistic machine with the full §4/§5 stack: trace cache, 2-level
        // BTB and the banked predictor.
        let fe = FrontEnd::TraceCache {
            config: TraceCacheConfig::paper(),
            btb: BtbKind::two_level_paper(),
        };
        let real = RealisticMachine::new(
            RealisticConfig::paper(fe, VpConfig::stride_infinite())
                .with_banked(BankedConfig::new(16)),
        )
        .run(&trace);
        assert_eq!(real.instructions, TRACE_LEN, "{}", workload.name());
        assert!(real.cycles > 0);
        assert!(real.trace_cache_stats.is_some());
        assert!(real.banked_stats.is_some());
        assert!(real.bpred_stats.is_some());
    }
}

#[test]
fn ipc_never_exceeds_the_configured_widths() {
    for workload in suite(&WorkloadParams::default()) {
        let trace = trace_program(workload.program(), TRACE_LEN);
        for rate in [4usize, 16, 40] {
            let r = IdealMachine::new(IdealConfig {
                fetch_rate: rate,
                vp: VpConfig::Perfect,
                ..IdealConfig::default()
            })
            .run(&trace);
            assert!(
                r.ipc() <= rate as f64 + 1e-9,
                "{} at rate {rate}: IPC {:.2}",
                workload.name(),
                r.ipc()
            );
        }
    }
}

#[test]
fn dependence_classes_partition_all_register_dependencies() {
    for workload in suite(&WorkloadParams::default()) {
        let trace = trace_program(workload.program(), TRACE_LEN);
        let r = IdealMachine::new(IdealConfig {
            fetch_rate: 16,
            vp: VpConfig::stride_infinite(),
            ..IdealConfig::default()
        })
        .run(&trace);
        let d = r.deps;
        assert_eq!(
            d.total,
            d.useful + d.useless_correct + d.wrong + d.unpredicted,
            "{}",
            workload.name()
        );
        // The machine and the DFG analyzer must agree on the arc count.
        let a = analyze(&trace);
        assert_eq!(d.total, a.arcs, "{}", workload.name());
    }
}

#[test]
fn vp_statistics_are_consistent_with_the_trace() {
    for workload in suite(&WorkloadParams::default()) {
        let trace = trace_program(workload.program(), TRACE_LEN);
        let value_producers = trace.iter().filter(|r| r.produces_value()).count() as u64;
        let r = IdealMachine::new(IdealConfig {
            fetch_rate: 16,
            vp: VpConfig::stride_infinite(),
            ..IdealConfig::default()
        })
        .run(&trace);
        let s = r.vp_stats.expect("stride predictor reports stats");
        assert_eq!(s.lookups, value_producers, "{}", workload.name());
        assert_eq!(s.correct + s.incorrect + s.unpredicted, value_producers, "{}", workload.name());
    }
}
