//! End-to-end tests for `--peers` fleet mode: two real daemons on
//! ephemeral loopback ports, sharding jobs by consistent hashing with
//! single-hop proxying — driven entirely over raw `TcpStream`s.
//!
//! The contracts under test:
//!
//! 1. **Shard routing** — every member agrees who owns a spec; a request
//!    landing on the wrong member is proxied to the owner, visible in the
//!    returned job id (`id % members == owner index`).
//! 2. **Fleet-wide result cache** — a spec answered by its owner is a
//!    cache hit no matter which member the repeat lands on.
//! 3. **Graceful degradation** — killing a member flips its health flag
//!    on the survivor and its share of the ring rehashes to the
//!    survivors; submissions keep succeeding throughout.
//! 4. **Fleet-wide observability** — `GET /fleet/metrics` asked of
//!    *either* member returns a merged document carrying both members'
//!    snapshots plus fleet-summed counters, and a killed member shows up
//!    as `"down"` instead of failing the aggregation.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use fetchvp_metrics::Json;
use fetchvp_server::{Server, ServerConfig};

struct Reply {
    status: u16,
    body: String,
}

impl Reply {
    fn json(&self) -> Json {
        Json::parse(&self.body).unwrap_or_else(|e| panic!("bad JSON body: {e}\n{}", self.body))
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.set_write_timeout(Some(Duration::from_secs(30))).unwrap();
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write request head");
    stream.write_all(body.as_bytes()).expect("write request body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("response is UTF-8");
    let (head, body) = text.split_once("\r\n\r\n").expect("response has a blank line");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {head}"));
    Reply { status, body: body.to_string() }
}

fn wait_for_job(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let reply = request(addr, "GET", &format!("/jobs/{id}"), None);
        assert_eq!(reply.status, 200, "job {id} lookup failed: {}", reply.body);
        let doc = reply.json();
        let status = doc.get("status").and_then(Json::as_str).expect("status field").to_string();
        if status == "done" || status == "failed" {
            return doc;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in `{status}`");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Reserves two distinct ephemeral loopback ports by binding and
/// immediately dropping listeners. The tiny bind race this leaves is
/// acceptable in a test (nothing else on the host grabs loopback ports
/// in the microseconds before the daemons re-bind them).
fn reserve_ports() -> (SocketAddr, SocketAddr) {
    let a = TcpListener::bind("127.0.0.1:0").unwrap().local_addr().unwrap();
    let b = TcpListener::bind("127.0.0.1:0").unwrap().local_addr().unwrap();
    (a, b)
}

type Running = (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>);

/// Starts a two-member fleet; member 0 is `fleet.0`, member 1 is
/// `fleet.1` (job-id parity matches those indices).
fn start_fleet() -> (Running, Running) {
    let (addr_a, addr_b) = reserve_ports();
    let peers = vec![addr_a.to_string(), addr_b.to_string()];
    let mut servers = Vec::new();
    for addr in [addr_a, addr_b] {
        let config = ServerConfig {
            addr: addr.to_string(),
            workers: 1,
            queue_depth: 8,
            peers: peers.clone(),
            ..ServerConfig::default()
        };
        let server = Server::bind(config).expect("bind fleet member");
        servers.push(std::thread::spawn(move || server.run()));
    }
    let mut handles = servers.into_iter();
    let fleet = ((addr_a, handles.next().unwrap()), (addr_b, handles.next().unwrap()));
    // `Server::bind` already bound both listeners, so connects queue in
    // the kernel backlog until each event loop starts — one blocking
    // health check per member proves both are serving. Then wait for the
    // health checkers to converge on "up": a checker that probed its
    // peer before that peer's event loop started has it briefly down,
    // and a down peer would skew shard routing (jobs run locally).
    for addr in [addr_a, addr_b] {
        let reply = request(addr, "GET", "/healthz", None);
        assert_eq!(reply.status, 200, "member {addr} never became healthy: {}", reply.body);
    }
    for (addr, peer) in [(addr_a, addr_b), (addr_b, addr_a)] {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let health = request(addr, "GET", "/healthz", None).json();
            let status = health
                .get("peers")
                .and_then(|p| p.get(&peer.to_string()))
                .and_then(Json::as_str)
                .expect("healthz must list the peer")
                .to_string();
            if status == "up" {
                break;
            }
            assert!(Instant::now() < deadline, "{addr} has {peer} stuck `{status}`");
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    fleet
}

fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let reply = request(addr, "POST", "/shutdown", None);
    assert_eq!(reply.status, 200, "shutdown refused: {}", reply.body);
    handle.join().expect("server thread").expect("server run() returned an error");
}

/// Submits specs (varying the seed) to `submit_to` until one is owned by
/// the member with id parity `owner_parity`; returns `(spec, job_id)`.
/// With 64 vnodes per member the ring splits close to evenly, so a
/// handful of seeds always suffices.
fn find_spec_owned_by(submit_to: SocketAddr, owner_parity: u64) -> (String, u64) {
    for seed in 0..64u64 {
        let spec = format!(r#"{{"experiment": "table3-1", "trace_len": 600, "seed": {seed}}}"#);
        let deadline = Instant::now() + Duration::from_secs(120);
        let reply = loop {
            let reply = request(submit_to, "POST", "/run", Some(&spec));
            // 503 is honest backpressure (the bounded queue is full);
            // wait for the single worker to drain and try again.
            if reply.status != 503 {
                break reply;
            }
            assert!(Instant::now() < deadline, "queue never drained for seed {seed}");
            std::thread::sleep(Duration::from_millis(50));
        };
        assert!(
            reply.status == 200 || reply.status == 202,
            "submit failed ({}): {}",
            reply.status,
            reply.body
        );
        // A 200 with no job id is a result-cache hit (a seed an earlier
        // search already ran) — no record to check parity on; move on.
        let Some(id) = reply.json().get("job").and_then(Json::as_u64) else { continue };
        if id % 2 == owner_parity {
            return (spec, id);
        }
    }
    panic!("no spec hashed to member parity {owner_parity} in 64 seeds — ring is degenerate");
}

#[test]
fn fleet_shards_jobs_and_proxies_lookups() {
    let ((addr_a, handle_a), (addr_b, handle_b)) = start_fleet();

    // start_fleet already proved both members list each other "up".

    // Everything is submitted to A, but job ids prove both members mint
    // records: odd ids were created by B after a proxy hop.
    let (spec_b, id_b) = find_spec_owned_by(addr_a, 1);
    assert_eq!(id_b % 2, 1, "B-owned spec must come back with a B-minted id");
    let (_, id_a) = find_spec_owned_by(addr_a, 0);
    assert_eq!(id_a % 2, 0);

    // GET /jobs for a B-owned id works from either member: A proxies the
    // lookup to B transparently.
    let via_a = wait_for_job(addr_a, id_b);
    let via_b = wait_for_job(addr_b, id_b);
    assert_eq!(via_a.to_json(), via_b.to_json(), "proxied lookup must relay B's record");
    assert_eq!(via_a.get("status").and_then(Json::as_str), Some("done"));

    // Fleet-wide cache: the repeat of a B-owned spec submitted to A is
    // routed to B and answered from B's result cache.
    let repeat = request(addr_a, "POST", "/run", Some(&spec_b));
    assert_eq!(repeat.status, 200, "repeat must be a cache hit: {}", repeat.body);
    let doc = repeat.json();
    assert_eq!(doc.get("cached").map(Json::to_json), Some("true".to_string()));
    assert_eq!(
        doc.get("result").map(Json::to_json),
        via_a.get("result").map(Json::to_json),
        "cached result must be byte-identical to the original run"
    );

    // The proxy hop is visible in A's metrics.
    let metrics = request(addr_a, "GET", "/metrics", None).json();
    let proxied = metrics
        .get("counters")
        .and_then(|c| c.get("server.peers.proxied"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(proxied >= 2, "expected at least 2 proxied requests, saw {proxied}");

    shutdown(addr_a, handle_a);
    shutdown(addr_b, handle_b);
}

#[test]
fn fleet_metrics_merge_from_either_member_and_mark_the_dead() {
    let ((addr_a, handle_a), (addr_b, handle_b)) = start_fleet();

    // Some traffic first, so the merged counters have something to sum.
    let (_, id) = find_spec_owned_by(addr_a, 0);
    wait_for_job(addr_a, id);

    // Asked of either member, the merged document reports both: the
    // asked member as "self", the other fetched over one forwarded hop
    // as "up", each carrying its full member snapshot.
    for (asked, other) in [(addr_a, addr_b), (addr_b, addr_a)] {
        let reply = request(asked, "GET", "/fleet/metrics", None);
        assert_eq!(reply.status, 200, "{asked}: {}", reply.body);
        let doc = reply.json();
        assert_eq!(doc.get("fleet_size").and_then(Json::as_u64), Some(2), "{asked}");
        assert_eq!(doc.get("reporting").and_then(Json::as_u64), Some(2), "{asked}");
        for (addr, status) in [(asked, "self"), (other, "up")] {
            let member = doc
                .get("members")
                .and_then(|m| m.get(&addr.to_string()))
                .unwrap_or_else(|| panic!("{asked}'s merge is missing member {addr}"));
            assert_eq!(member.get("status").and_then(Json::as_str), Some(status), "{addr}");
            assert_eq!(
                member.get("addr").and_then(Json::as_str),
                Some(addr.to_string().as_str()),
                "member snapshots carry their own address"
            );
            assert!(member.get("uptime_seconds").and_then(Json::as_u64).is_some(), "{addr}");
            assert!(member.get("live_jobs").is_some(), "{addr} must report its live jobs");
            assert!(
                member.get_path("metrics.counters").and_then(|c| c.get("server.started")).is_some(),
                "{addr} must embed a full metrics snapshot"
            );
        }
        // Counters are fleet-summed: both members started exactly once.
        assert_eq!(
            doc.get_path("summed.counters")
                .and_then(|c| c.get("server.started"))
                .and_then(Json::as_u64),
            Some(2),
            "{asked}: summed counters must cover both members"
        );
    }

    // Kill B: A's merge degrades instead of failing — B is marked
    // "down" (no snapshot), A still reports, the endpoint stays 200.
    shutdown(addr_b, handle_b);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let doc = request(addr_a, "GET", "/fleet/metrics", None).json();
        let status = doc
            .get("members")
            .and_then(|m| m.get(&addr_b.to_string()))
            .and_then(|m| m.get("status"))
            .and_then(Json::as_str)
            .unwrap_or("missing")
            .to_string();
        if status == "down" {
            assert_eq!(doc.get("reporting").and_then(Json::as_u64), Some(1));
            assert_eq!(doc.get("fleet_size").and_then(Json::as_u64), Some(2));
            assert!(
                doc.get("members")
                    .and_then(|m| m.get(&addr_b.to_string()))
                    .and_then(|m| m.get("metrics"))
                    .is_none(),
                "a dead member contributes no snapshot"
            );
            break;
        }
        assert!(Instant::now() < deadline, "B never marked down in the merge (`{status}`)");
        std::thread::sleep(Duration::from_millis(50));
    }

    shutdown(addr_a, handle_a);
}

#[test]
fn killing_a_member_degrades_gracefully() {
    let ((addr_a, handle_a), (addr_b, handle_b)) = start_fleet();

    // Pin down a spec owned by B, then take B away.
    let (spec_b, id_b) = find_spec_owned_by(addr_a, 1);
    wait_for_job(addr_a, id_b);
    shutdown(addr_b, handle_b);

    // A's health checker notices within a few probe intervals.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let health = request(addr_a, "GET", "/healthz", None).json();
        let status = health
            .get("peers")
            .and_then(|p| p.get(&addr_b.to_string()))
            .and_then(Json::as_str)
            .unwrap_or("missing")
            .to_string();
        if status == "down" {
            break;
        }
        assert!(Instant::now() < deadline, "peer never marked down (stuck at `{status}`)");
        std::thread::sleep(Duration::from_millis(50));
    }

    // B's share of the ring rehashes onto A: the same spec now runs
    // locally (A-minted even id) and still completes. A fresh job record
    // is minted because B's cache died with it.
    let rerouted = request(addr_a, "POST", "/run", Some(&spec_b));
    assert!(
        rerouted.status == 200 || rerouted.status == 202,
        "submission must survive the peer's death: {} {}",
        rerouted.status,
        rerouted.body
    );
    let id = rerouted.json().get("job").and_then(Json::as_u64).expect("job id");
    assert_eq!(id % 2, 0, "with B dead, A must mint the record itself");
    let doc = wait_for_job(addr_a, id);
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));

    // The flip is counted.
    let metrics = request(addr_a, "GET", "/metrics", None).json();
    let flips = metrics
        .get("counters")
        .and_then(|c| c.get("server.peers.health_flips"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(flips >= 1, "the death of B must be recorded as a health flip");

    shutdown(addr_a, handle_a);
}
