//! End-to-end tests for `fetchvp serve`: a real daemon on an ephemeral
//! port, driven over raw `TcpStream`s exactly like an external client.
//!
//! The two contracts under test:
//!
//! 1. **Served determinism** — a job submitted over HTTP returns counter
//!    sections byte-identical to running the same spec in-process with a
//!    serial sweep, no matter how many client threads submit concurrently
//!    or how many pool workers execute.
//! 2. **Backpressure** — a full queue answers `503` + `Retry-After`
//!    immediately (never blocks, never panics), and every job the server
//!    `202`-accepted still runs to completion.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use fetchvp_experiments::{bench, JobSpec, Sweep};
use fetchvp_metrics::Json;
use fetchvp_server::{Server, ServerConfig};

/// A parsed HTTP response: status code, headers, body.
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    fn json(&self) -> Json {
        Json::parse(&self.body).unwrap_or_else(|e| panic!("bad JSON body: {e}\n{}", self.body))
    }
}

/// One HTTP/1.1 exchange over a fresh connection (the server's model:
/// one request per connection, `Connection: close`).
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.set_write_timeout(Some(Duration::from_secs(30))).unwrap();
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write request head");
    stream.write_all(body.as_bytes()).expect("write request body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("response is UTF-8");
    let (head, body) = text.split_once("\r\n\r\n").expect("response has a blank line");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {status_line}"));
    let headers = lines
        .filter_map(|line| line.split_once(": "))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    Reply { status, headers, body: body.to_string() }
}

/// Polls `GET /jobs/<id>` until the job reaches a terminal status.
fn wait_for_job(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let reply = request(addr, "GET", &format!("/jobs/{id}"), None);
        assert_eq!(reply.status, 200, "job {id} lookup failed: {}", reply.body);
        let doc = reply.json();
        let status = doc.get("status").and_then(Json::as_str).expect("status field").to_string();
        if status == "done" || status == "failed" {
            return doc;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in `{status}`");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Binds a server on an ephemeral loopback port and runs it on a thread.
fn start(config: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServerConfig { addr: "127.0.0.1:0".to_string(), ..config })
        .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let reply = request(addr, "POST", "/shutdown", None);
    assert_eq!(reply.status, 200, "shutdown refused: {}", reply.body);
    handle.join().expect("server thread").expect("server run() returned an error");
}

#[test]
fn served_jobs_are_byte_identical_to_in_process_runs() {
    let (addr, handle) =
        start(ServerConfig { workers: 3, queue_depth: 32, ..ServerConfig::default() });

    let health = request(addr, "GET", "/healthz", None);
    assert_eq!(health.status, 200);
    assert_eq!(health.json().get("status").and_then(Json::as_str), Some("ok"));

    // 8 jobs from 4 client threads: two distinct specs (different seeds,
    // one parallel inner sweep) so the sweep pool serves both hits and
    // misses while workers execute concurrently.
    let specs = [
        r#"{"experiment": "bench", "trace_len": 2000, "seed": 7}"#,
        r#"{"experiment": "bench", "trace_len": 2000, "seed": 11, "jobs": 2}"#,
    ];
    let ids: Vec<(usize, u64)> = std::thread::scope(|s| {
        let submitters: Vec<_> = (0..8)
            .map(|i| {
                let spec = specs[i % specs.len()];
                s.spawn(move || {
                    let reply = request(addr, "POST", "/run", Some(spec));
                    assert_eq!(reply.status, 202, "submit {i} rejected: {}", reply.body);
                    let doc = reply.json();
                    assert_eq!(doc.get("status").and_then(Json::as_str), Some("queued"));
                    (i % specs.len(), doc.get("job").and_then(Json::as_u64).expect("job id"))
                })
            })
            .collect();
        submitters.into_iter().map(|t| t.join().expect("submitter thread")).collect()
    });
    assert_eq!(ids.len(), 8);

    // The oracle: each spec run in-process on a serial sweep.
    let oracles: Vec<_> = specs
        .iter()
        .map(|text| {
            let spec = JobSpec::from_json(&Json::parse(text).unwrap()).unwrap();
            let report = bench::run_with(&Sweep::with_jobs(&spec.config(), 1), spec.is_quick());
            (spec, report)
        })
        .collect();

    for (which, id) in &ids {
        let doc = wait_for_job(addr, *id);
        assert_eq!(
            doc.get("status").and_then(Json::as_str),
            Some("done"),
            "job {id} failed: {}",
            doc.get("error").and_then(Json::as_str).unwrap_or("<no error>")
        );
        let (spec, report) = &oracles[*which];
        assert_eq!(
            doc.get_path("spec.seed").and_then(Json::as_u64),
            Some(spec.seed),
            "job {id} echoed the wrong spec"
        );
        let result = doc.get("result").expect("done job has a result");
        for w in &report.workloads {
            let served = result
                .get_path("workloads")
                .and_then(|all| all.get(w.name))
                .unwrap_or_else(|| panic!("job {id} result is missing workload {}", w.name));
            assert_eq!(
                served.get("instructions").and_then(Json::as_u64),
                Some(w.instructions),
                "job {id} {}: instruction counts differ from the serial run",
                w.name
            );
            assert_eq!(
                served.get("counters").map(Json::to_json),
                Some(w.registry.counters_json().to_json()),
                "job {id} {}: served counters differ from the serial run",
                w.name
            );
        }
    }

    // Error paths, still over the wire.
    let bad = request(addr, "POST", "/run", Some(r#"{"experiment": "fig9-9"}"#));
    assert_eq!(bad.status, 400);
    assert!(bad.json().get("error").and_then(Json::as_str).unwrap().contains("fig9-9"));
    assert_eq!(request(addr, "GET", "/jobs/999999", None).status, 404);
    assert_eq!(request(addr, "GET", "/jobs/not-a-number", None).status, 400);
    assert_eq!(request(addr, "PUT", "/run", Some("{}")).status, 405);
    assert_eq!(request(addr, "GET", "/nope", None).status, 404);

    // The live registry: server counters plus the simulator namespaces
    // merged from completed bench jobs, parseable by our own Json.
    let metrics = request(addr, "GET", "/metrics", None);
    assert_eq!(metrics.status, 200);
    let doc = metrics.json();
    let counters = doc.get("counters").and_then(Json::as_object).expect("counters section");
    for namespace in ["server.", "sched.", "trace."] {
        assert!(
            counters.iter().any(|(k, _)| k.starts_with(namespace)),
            "metrics missing `{namespace}*` counters (got {:?})",
            counters.iter().map(|(k, _)| k).collect::<Vec<_>>()
        );
    }
    assert_eq!(
        doc.get_path("counters")
            .and_then(|c| c.get("server.jobs.completed"))
            .and_then(Json::as_u64),
        Some(8),
        "all eight jobs should be counted as completed"
    );
    assert!(
        doc.get("histograms").and_then(|h| h.get("server.job_latency_ms")).is_some(),
        "metrics missing the job latency histogram"
    );
    assert!(
        doc.get("gauges").and_then(|g| g.get("server.queue.depth")).is_some(),
        "metrics missing the queue depth gauge"
    );

    shutdown(addr, handle);
}

#[test]
fn full_queue_answers_503_and_accepted_jobs_still_finish() {
    let (addr, handle) =
        start(ServerConfig { workers: 1, queue_depth: 1, ..ServerConfig::default() });

    // A single worker and a one-slot queue: a burst of slow-ish jobs must
    // overflow. Submissions happen from four threads at once so rejection
    // is exercised under contention, not just sequentially.
    let spec = r#"{"experiment": "bench", "trace_len": 20000, "seed": 5}"#;
    let replies: Vec<(u16, Option<String>, Option<u64>)> = std::thread::scope(|s| {
        let clients: Vec<_> = (0..12)
            .map(|_| {
                s.spawn(move || {
                    let reply = request(addr, "POST", "/run", Some(spec));
                    let retry = reply.header("Retry-After").map(str::to_string);
                    let id = reply.json().get("job").and_then(Json::as_u64);
                    (reply.status, retry, id)
                })
            })
            .collect();
        clients.into_iter().map(|c| c.join().expect("client thread")).collect()
    });

    let accepted: Vec<u64> =
        replies.iter().filter(|(s, _, _)| *s == 202).filter_map(|(_, _, id)| *id).collect();
    let rejected: Vec<_> = replies.iter().filter(|(s, _, _)| *s == 503).collect();
    assert!(
        !accepted.is_empty(),
        "at least one job must be admitted (statuses: {:?})",
        replies.iter().map(|(s, _, _)| s).collect::<Vec<_>>()
    );
    assert!(
        !rejected.is_empty(),
        "a one-slot queue must reject part of a 12-job burst (statuses: {:?})",
        replies.iter().map(|(s, _, _)| s).collect::<Vec<_>>()
    );
    for (_, retry, _) in &rejected {
        assert!(retry.is_some(), "503 must carry Retry-After");
    }

    // The 202 contract: everything admitted completes.
    for id in &accepted {
        let doc = wait_for_job(addr, *id);
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"), "job {id}");
    }

    let metrics = request(addr, "GET", "/metrics", None).json();
    let counter = |name: &str| {
        metrics.get("counters").and_then(|c| c.get(name)).and_then(Json::as_u64).unwrap_or(0)
    };
    assert_eq!(counter("server.queue.admitted"), accepted.len() as u64);
    assert_eq!(counter("server.queue.rejected"), rejected.len() as u64);
    assert_eq!(counter("server.jobs.completed"), accepted.len() as u64);

    shutdown(addr, handle);
}

/// The result cache makes a repeated deterministic spec a dictionary
/// lookup: the second POST of an identical spec (even reformatted) is
/// answered inline with a byte-identical result, without any new
/// sweep-pool or worker activity; changing any canonical field misses.
#[test]
fn identical_specs_hit_the_result_cache() {
    let (addr, handle) =
        start(ServerConfig { workers: 1, queue_depth: 8, ..ServerConfig::default() });
    let spec = r#"{"experiment": "table3-1", "trace_len": 1000, "seed": 9}"#;

    // Cold: the job queues and a worker simulates it.
    let cold = request(addr, "POST", "/run", Some(spec));
    assert_eq!(cold.status, 202, "{}", cold.body);
    let id = cold.json().get("job").and_then(Json::as_u64).unwrap();
    let uncached = wait_for_job(addr, id);
    assert_eq!(uncached.get("status").and_then(Json::as_str), Some("done"));
    let uncached_result = uncached.get("result").expect("result document").to_json();

    let counters_before = request(addr, "GET", "/metrics", None).json();
    let pool_work = |doc: &Json| {
        let counter = |name: &str| {
            doc.get("counters").and_then(|c| c.get(name)).and_then(Json::as_u64).unwrap_or(0)
        };
        counter("server.sweep_pool.hits") + counter("server.sweep_pool.misses")
    };

    // Warm: same spec with different formatting and explicit defaults —
    // answered inline, result byte-identical, no new pool work.
    let reformatted = r#"{ "seed": 9, "experiment": "table3-1", "trace_len": 1000, "jobs": 1 }"#;
    let warm = request(addr, "POST", "/run", Some(reformatted));
    assert_eq!(warm.status, 200, "cache hit answers inline: {}", warm.body);
    let doc = warm.json();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(doc.get("cached").map(Json::to_json), Some("true".to_string()));
    assert_eq!(
        doc.get("result").expect("inlined result").to_json(),
        uncached_result,
        "cached result must be byte-identical to the uncached run"
    );
    // A cache hit is self-contained: no job record is minted, so warm
    // traffic cannot grow the job table.
    assert!(doc.get("job").is_none(), "cache hits must not mint a job id: {}", warm.body);

    let metrics = request(addr, "GET", "/metrics", None).json();
    assert_eq!(
        pool_work(&metrics),
        pool_work(&counters_before),
        "a cache hit must not create sweep-pool work"
    );
    let counter = |name: &str| {
        metrics.get("counters").and_then(|c| c.get(name)).and_then(Json::as_u64).unwrap_or(0)
    };
    assert_eq!(counter("server.jobs.cached"), 1);
    assert_eq!(counter("server.jobs.completed"), 1, "only the cold job ran");
    let gauge = |name: &str| {
        metrics.get("gauges").and_then(|g| g.get(name)).and_then(Json::as_f64).unwrap_or(-1.0)
    };
    assert_eq!(gauge("server.result_cache.hits"), 1.0);
    assert!(gauge("server.result_cache.misses") >= 1.0, "the cold lookup was a miss");

    // Any canonical field changing is a miss: the job queues again.
    for changed in [
        r#"{"experiment": "table3-1", "trace_len": 1001, "seed": 9}"#,
        r#"{"experiment": "table3-1", "trace_len": 1000, "seed": 10}"#,
        r#"{"experiment": "table3-1", "trace_len": 1000, "seed": 9, "jobs": 2}"#,
        r#"{"experiment": "accuracy", "trace_len": 1000, "seed": 9}"#,
    ] {
        let miss = request(addr, "POST", "/run", Some(changed));
        assert_eq!(miss.status, 202, "changed field must miss: {changed}");
        let id = miss.json().get("job").and_then(Json::as_u64).unwrap();
        wait_for_job(addr, id);
    }

    shutdown(addr, handle);
}

/// Keep-alive audit: the daemon serves exactly one request per
/// connection, so every response — success *and* every error path — must
/// carry `Connection: close`, and `503`s must carry a `Retry-After`
/// derived from the live queue state (at least 1 second).
#[test]
fn every_path_closes_the_connection_and_503_hints_a_retry() {
    let (addr, handle) =
        start(ServerConfig { workers: 1, queue_depth: 8, ..ServerConfig::default() });

    let paths: &[(&str, &str, Option<&str>, u16)] = &[
        ("GET", "/healthz", None, 200),
        ("POST", "/run", Some(r#"{"experiment": "fig9-9"}"#), 400),
        ("GET", "/jobs/424242", None, 404),
        ("PUT", "/run", Some("{}"), 405),
        ("GET", "/nope", None, 404),
    ];
    for (method, path, body, expected) in paths {
        let reply = request(addr, method, path, *body);
        assert_eq!(reply.status, *expected, "{method} {path}");
        assert_eq!(
            reply.header("Connection"),
            Some("close"),
            "{method} {path} ({expected}) must tell keep-alive clients to hang up"
        );
    }
    // An oversized declared body is rejected while reading — with the
    // close header intact on the 413.
    let huge = request_with_declared_length(addr, 10 * 1024 * 1024);
    assert_eq!(huge.status, 413);
    assert_eq!(huge.header("Connection"), Some("close"));

    shutdown(addr, handle);
}

/// A POST /run whose `Content-Length` declares `declared` bytes but only
/// sends a few — exercises the header-time body-size rejection.
fn request_with_declared_length(addr: SocketAddr, declared: usize) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let head = format!("POST /run HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {declared}\r\n\r\n");
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(b"{}").expect("write partial body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("response is UTF-8");
    let (head, body) = text.split_once("\r\n\r\n").expect("response has a blank line");
    let mut lines = head.split("\r\n");
    let status: u16 =
        lines.next().and_then(|l| l.split_whitespace().nth(1)).unwrap().parse().unwrap();
    let headers = lines
        .filter_map(|line| line.split_once(": "))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    Reply { status, headers, body: body.to_string() }
}

/// The on-disk trace cache survives daemon restarts: a second server
/// pointed at the same `--trace-dir` must replay every trace from disk
/// without generating anything (all hits, zero misses, and a
/// `trace_cache` section in the bench report).
#[test]
fn warm_trace_dir_serves_a_restarted_daemon_without_regenerating() {
    let dir = std::env::temp_dir().join(format!("fetchvp-server-e2e-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = r#"{"experiment": "bench", "trace_len": 2000, "seed": 13}"#;

    let trace_cache_gauges = |addr: SocketAddr| -> (u64, u64) {
        let doc = request(addr, "GET", "/metrics", None).json();
        let gauge = |name: &str| {
            doc.get("gauges")
                .and_then(|g| g.get(name))
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("metrics missing gauge {name}")) as u64
        };
        (gauge("server.trace_cache.hits"), gauge("server.trace_cache.misses"))
    };

    // Cold daemon: every benchmark trace is generated to disk once.
    let (addr, handle) =
        start(ServerConfig { workers: 1, trace_dir: Some(dir.clone()), ..ServerConfig::default() });
    let reply = request(addr, "POST", "/run", Some(spec));
    assert_eq!(reply.status, 202, "{}", reply.body);
    let id = reply.json().get("job").and_then(Json::as_u64).unwrap();
    let doc = wait_for_job(addr, id);
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
    let cold = doc
        .get_path("result.trace_cache")
        .expect("bench report carries a trace_cache section when served with a trace dir");
    let cold_misses = cold.get("misses").and_then(Json::as_u64).unwrap();
    assert_eq!(cold.get("hits").and_then(Json::as_u64), Some(0), "cold cache cannot hit");
    assert!(cold_misses > 0, "cold run must generate every trace");
    assert!(cold.get("bytes").and_then(Json::as_u64).unwrap() > 0);
    assert_eq!(trace_cache_gauges(addr), (0, cold_misses), "/metrics mirrors the counters");
    shutdown(addr, handle);

    // Restarted daemon, same directory: zero generation, all hits.
    let (addr, handle) =
        start(ServerConfig { workers: 1, trace_dir: Some(dir.clone()), ..ServerConfig::default() });
    let reply = request(addr, "POST", "/run", Some(spec));
    assert_eq!(reply.status, 202, "{}", reply.body);
    let id = reply.json().get("job").and_then(Json::as_u64).unwrap();
    let doc = wait_for_job(addr, id);
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
    let warm = doc.get_path("result.trace_cache").expect("trace_cache section");
    assert_eq!(
        warm.get("misses").and_then(Json::as_u64),
        Some(0),
        "warm trace dir must not regenerate anything"
    );
    assert_eq!(warm.get("hits").and_then(Json::as_u64), Some(cold_misses));
    assert_eq!(warm.get("bytes").and_then(Json::as_u64), Some(0), "no bytes written when warm");
    shutdown(addr, handle);

    std::fs::remove_dir_all(&dir).expect("remove scratch trace dir");
}

/// The sweep pool keeps traces warm across requests: two identical specs
/// must hit the pool the second time (visible in the hit/miss counters).
/// The result cache is disabled here so the second job actually reaches a
/// worker — with caching on it would be answered inline and never touch
/// the pool (covered by `identical_specs_hit_the_result_cache`).
#[test]
fn repeated_specs_hit_the_sweep_pool() {
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        queue_depth: 8,
        result_cache_entries: 0,
        ..ServerConfig::default()
    });
    let spec = r#"{"experiment": "table3-1", "trace_len": 1000, "seed": 9}"#;
    for _ in 0..2 {
        let reply = request(addr, "POST", "/run", Some(spec));
        assert_eq!(reply.status, 202, "{}", reply.body);
        let id = reply.json().get("job").and_then(Json::as_u64).unwrap();
        let doc = wait_for_job(addr, id);
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
        assert!(
            doc.get_path("result.csv").and_then(Json::as_str).is_some(),
            "table experiments return CSV"
        );
    }
    let metrics = request(addr, "GET", "/metrics", None).json();
    assert_eq!(
        metrics
            .get("counters")
            .and_then(|c| c.get("server.sweep_pool.misses"))
            .and_then(Json::as_u64),
        Some(1),
        "first job builds the sweep"
    );
    assert_eq!(
        metrics
            .get("counters")
            .and_then(|c| c.get("server.sweep_pool.hits"))
            .and_then(Json::as_u64),
        Some(1),
        "second identical spec reuses it"
    );
    shutdown(addr, handle);
}
